// Package netsim simulates the communication substrate of the HADES
// testbed (an ATM network of workstations).
//
// The paper models all communication as an independent task NetMsg that
// "uses a set of resources (embedded CPUs of the involved network cards,
// network hardware, DMAs, CPUs) and controls concurrent accesses to the
// network hardware" (§3.1). This package reproduces that shape:
//
//   - links have bounded transmission delay [DMin, DMax] and deliver in
//     FIFO order (per directed link), the synchrony assumption every
//     time-bounded service relies on;
//   - message receipt raises the ATM card interrupt (the w_atm kernel
//     activity of §4.2), then runs a protocol thread (the NetMsg task)
//     at a configurable priority before handing the message to the bound
//     handler;
//   - omission and performance (late-delivery) failures are injected via
//     a deterministic, seeded fault hook, matching the §2.1 failure model;
//   - network partitions (SetPartition/Heal) split the nodes into sides
//     whose cross-side traffic — including copies already in flight — is
//     dropped until the partition heals: the link-loss/segmentation
//     fault class that dominates real deployments.
//
// Sender-side CPU cost (C_trans_data) is deliberately *not* charged here:
// per §4.1 it is a dispatcher activity, charged by the dispatcher (or
// included in a service task's WCET).
package netsim

import (
	"errors"
	"fmt"

	"hades/internal/eventq"
	"hades/internal/monitor"
	"hades/internal/simkern"
	"hades/internal/trace"
	"hades/internal/vtime"
)

// Fate is a fault hook's decision about one message.
type Fate uint8

// Fates a message can meet.
const (
	// FateDeliver delivers within the link's bounds (no fault).
	FateDeliver Fate = iota + 1
	// FateDrop drops the message: an omission failure.
	FateDrop
	// FateDelay delivers late by Extra beyond the sampled delay: a
	// performance failure.
	FateDelay
)

// Verdict is the full decision of a fault hook.
type Verdict struct {
	Fate  Fate
	Extra vtime.Duration // only for FateDelay
}

// FaultHook decides the fate of each message. Implementations must be
// deterministic given the engine's seeded random source.
type FaultHook interface {
	Judge(m *Message) Verdict
}

// Message is one datagram crossing the network.
type Message struct {
	ID      uint64
	From    int // sender processor ID
	To      int // receiver processor ID
	Port    string
	Payload any
	Size    int // bytes, informational

	SentAt      vtime.Time
	DeliveredAt vtime.Time // set on delivery

	// Deps carries dependency-tracking identifiers (service [NMT97]).
	Deps []uint64
}

// Config holds the NetMsg receive-path parameters.
type Config struct {
	// WAtm is the ATM card interrupt handler WCET (w_atm, §4.2).
	WAtm vtime.Duration
	// WProto is the protocol (NetMsg task) processing WCET per message.
	WProto vtime.Duration
	// PrioNet is the priority at which the NetMsg protocol task runs —
	// the paper notes this is a parameter of the communication protocol.
	PrioNet int
}

// DefaultConfig mirrors the magnitude of the paper's testbed: a 25 µs
// interrupt handler and 35 µs of protocol processing at a high priority.
func DefaultConfig() Config {
	return Config{
		WAtm:    25 * vtime.Microsecond,
		WProto:  35 * vtime.Microsecond,
		PrioNet: simkern.PrioMax - 2,
	}
}

type link struct {
	from, to     int
	dMin, dMax   vtime.Duration
	lastDelivery vtime.Time // FIFO enforcement
}

// Stats aggregates network behaviour for the experiment harness.
type Stats struct {
	Sent      int
	Delivered int
	Dropped   int
	Late      int // performance failures injected
	// PartDropped counts messages cut by an active network partition
	// (also included in Dropped).
	PartDropped int
	MaxDelay    vtime.Duration
}

// Network is the simulated interconnect. Not safe for concurrent use.
type Network struct {
	eng       *simkern.Engine
	cfg       Config
	links     map[[2]int]*link
	handlers  map[int]map[string]func(*Message)
	fault     FaultHook
	down      map[int]bool
	downWatch []func(node int, down bool)
	side      map[int]int // node → partition side (empty = no partition)
	partWatch []func(partitioned bool)
	nextID    uint64
	stats     Stats
	protoSeq  uint64
}

// New creates a network over the engine's processors.
func New(eng *simkern.Engine, cfg Config) *Network {
	return &Network{
		eng:      eng,
		cfg:      cfg,
		links:    make(map[[2]int]*link),
		handlers: make(map[int]map[string]func(*Message)),
		down:     make(map[int]bool),
	}
}

// Engine returns the owning engine.
func (n *Network) Engine() *simkern.Engine { return n.eng }

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// Inflight returns the number of messages sent but neither delivered
// nor dropped — the wire-occupancy signal the metrics plane samples
// (drops are counted whether they happen at send time or in flight,
// so the difference is exact).
func (n *Network) Inflight() int {
	return n.stats.Sent - n.stats.Delivered - n.stats.Dropped
}

// SetFault installs the fault hook (nil disables injection).
func (n *Network) SetFault(f FaultHook) { n.fault = f }

// SetNodeDown marks a processor as crashed: messages to or from it are
// dropped silently (crashed nodes neither send nor receive). State
// changes notify the watchers registered with OnDownChange.
func (n *Network) SetNodeDown(proc int, isDown bool) {
	if n.down[proc] == isDown {
		return
	}
	n.down[proc] = isDown
	for _, w := range n.downWatch {
		w(proc, isDown)
	}
}

// OnDownChange registers a watcher invoked on every crash/recovery
// transition — services that keep per-node liveness state (the fault
// detector, membership) use it to reinitialise deterministically on
// recovery rather than inferring it from message arrival.
func (n *Network) OnDownChange(fn func(node int, down bool)) {
	n.downWatch = append(n.downWatch, fn)
}

// NodeDown reports whether proc is marked crashed.
func (n *Network) NodeDown(proc int) bool { return n.down[proc] }

// SetPartition cuts the network into the given sides: messages between
// nodes on different sides are dropped (in both directions, including
// copies already in flight) until Heal. Nodes listed in no side keep
// full connectivity — they stand for hosts outside the segmented
// segment (e.g. a client on an unaffected subnet). A node may appear
// in at most one side. Watchers registered with OnPartitionChange fire
// on the transition, so liveness-tracking services can react
// deterministically.
func (n *Network) SetPartition(sides ...[]int) {
	side := make(map[int]int)
	for i, s := range sides {
		for _, node := range s {
			if prev, dup := side[node]; dup && prev != i {
				panic(fmt.Sprintf("netsim: node %d in two partition sides", node))
			}
			side[node] = i
		}
	}
	n.side = side
	n.eng.Log().Recordf(n.eng.Now(), monitor.KindPartition, -1, "net", "split %v", sides)
	for _, w := range n.partWatch {
		w(true)
	}
}

// PartitionAt schedules a partition into the given sides at instant t.
func (n *Network) PartitionAt(t vtime.Time, sides ...[]int) {
	n.eng.At(t, eventq.ClassApp, func() { n.SetPartition(sides...) })
}

// HealAt schedules the heal of the partition at instant t.
func (n *Network) HealAt(t vtime.Time) {
	n.eng.At(t, eventq.ClassApp, func() { n.Heal() })
}

// Heal removes the partition: full declared connectivity is restored
// and partition watchers fire.
func (n *Network) Heal() {
	if n.side == nil {
		return
	}
	n.side = nil
	n.eng.Log().Recordf(n.eng.Now(), monitor.KindPartition, -1, "net", "heal")
	for _, w := range n.partWatch {
		w(false)
	}
}

// Partitioned reports whether the a→b path is currently cut by the
// partition (both endpoints on known, different sides).
func (n *Network) Partitioned(a, b int) bool {
	if n.side == nil {
		return false
	}
	sa, oka := n.side[a]
	sb, okb := n.side[b]
	return oka && okb && sa != sb
}

// PartitionActive reports whether a partition is in force.
func (n *Network) PartitionActive() bool { return n.side != nil }

// Side returns the partition side of a node and whether it is listed
// in the active partition (false also when no partition is active).
func (n *Network) Side(node int) (int, bool) {
	s, ok := n.side[node]
	return s, ok
}

// OnPartitionChange registers a watcher invoked whenever a partition
// is installed (true) or healed (false).
func (n *Network) OnPartitionChange(fn func(partitioned bool)) {
	n.partWatch = append(n.partWatch, fn)
}

// Connect creates a bidirectional link between processors a and b with
// transmission delay bounds [dMin, dMax].
func (n *Network) Connect(a, b int, dMin, dMax vtime.Duration) {
	if dMin < 0 || dMax < dMin {
		panic(fmt.Sprintf("netsim: bad delay bounds [%s,%s]", dMin, dMax))
	}
	n.links[[2]int{a, b}] = &link{from: a, to: b, dMin: dMin, dMax: dMax}
	n.links[[2]int{b, a}] = &link{from: b, to: a, dMin: dMin, dMax: dMax}
}

// ConnectAll fully connects the given processors with the same bounds.
func (n *Network) ConnectAll(procs []int, dMin, dMax vtime.Duration) {
	for i, a := range procs {
		for _, b := range procs[i+1:] {
			n.Connect(a, b, dMin, dMax)
		}
	}
}

// DelayBound returns the worst-case delay of the a→b link, which
// time-bounded services use to size their round lengths. The second
// result is false if the processors are not connected.
func (n *Network) DelayBound(a, b int) (vtime.Duration, bool) {
	l, ok := n.links[[2]int{a, b}]
	if !ok {
		return 0, false
	}
	return l.dMax, true
}

// DelayBounds returns both delay bounds of the a→b link; clock
// synchronisation uses the midpoint as its delay estimator.
func (n *Network) DelayBounds(a, b int) (dMin, dMax vtime.Duration, ok bool) {
	l, found := n.links[[2]int{a, b}]
	if !found {
		return 0, 0, false
	}
	return l.dMin, l.dMax, true
}

// Bind registers the handler for messages to proc on port. Binding a
// port twice replaces the handler.
func (n *Network) Bind(proc int, port string, h func(*Message)) {
	m := n.handlers[proc]
	if m == nil {
		m = make(map[string]func(*Message))
		n.handlers[proc] = m
	}
	m[port] = h
}

// ErrNoLink is returned when sending between unconnected processors.
var ErrNoLink = errors.New("netsim: processors not connected")

// Send transmits payload from processor `from` to `to` on port. Delivery
// (if the message survives injection) raises the ATM interrupt on the
// receiver, runs the protocol task, and then invokes the bound handler.
func (n *Network) Send(from, to int, port string, payload any, size int) (*Message, error) {
	l, ok := n.links[[2]int{from, to}]
	if !ok {
		return nil, ErrNoLink
	}
	n.nextID++
	m := &Message{ID: n.nextID, From: from, To: to, Port: port, Payload: payload, Size: size, SentAt: n.eng.Now()}
	n.stats.Sent++
	log := n.eng.Log()
	log.Recordf(n.eng.Now(), monitor.KindMessageSend, from, port, "to=n%d id=%d", to, m.ID)

	if n.down[from] || n.down[to] {
		n.stats.Dropped++
		log.Recordf(n.eng.Now(), monitor.KindMessageDrop, to, port, "id=%d node down", m.ID)
		n.noteDrop(m, "node down")
		return m, nil
	}
	if n.Partitioned(from, to) {
		n.stats.Dropped++
		n.stats.PartDropped++
		log.Recordf(n.eng.Now(), monitor.KindMessageDrop, to, port, "id=%d partitioned", m.ID)
		n.noteDrop(m, "partitioned")
		return m, nil
	}

	delay := l.dMin
	if span := l.dMax - l.dMin; span > 0 {
		delay += vtime.Duration(n.eng.Rand().Int63n(int64(span) + 1))
	}
	if n.fault != nil {
		switch v := n.fault.Judge(m); v.Fate {
		case FateDrop:
			n.stats.Dropped++
			log.Recordf(n.eng.Now(), monitor.KindMessageDrop, to, port, "id=%d omission", m.ID)
			n.noteDrop(m, "omission")
			return m, nil
		case FateDelay:
			n.stats.Late++
			delay += v.Extra
		}
	}
	if delay > n.stats.MaxDelay {
		n.stats.MaxDelay = delay
	}

	arrive := n.eng.Now().Add(delay)
	if arrive < l.lastDelivery { // FIFO per directed link
		arrive = l.lastDelivery
	}
	l.lastDelivery = arrive
	n.eng.At(arrive, eventq.ClassNetwork, func() { n.receive(m) })
	return m, nil
}

// Multicast sends the same payload to every processor in tos (excluding
// the sender if present). It returns the messages actually submitted.
func (n *Network) Multicast(from int, tos []int, port string, payload any, size int) ([]*Message, error) {
	var out []*Message
	for _, to := range tos {
		if to == from {
			continue
		}
		m, err := n.Send(from, to, port, payload, size)
		if err != nil {
			return out, err
		}
		out = append(out, m)
	}
	return out, nil
}

// receive runs the paper's receive path: ATM interrupt, then the NetMsg
// protocol thread, then the port handler.
func (n *Network) receive(m *Message) {
	if n.down[m.To] {
		n.stats.Dropped++
		n.eng.Log().Recordf(n.eng.Now(), monitor.KindMessageDrop, m.To, m.Port, "id=%d receiver down", m.ID)
		n.noteDrop(m, "receiver down")
		return
	}
	if n.Partitioned(m.From, m.To) {
		// The cut is instantaneous: copies in flight when the partition
		// starts are lost with the segment.
		n.stats.Dropped++
		n.stats.PartDropped++
		n.eng.Log().Recordf(n.eng.Now(), monitor.KindMessageDrop, m.To, m.Port, "id=%d partitioned in flight", m.ID)
		n.noteDrop(m, "partitioned in flight")
		return
	}
	procs := n.eng.Processors()
	if m.To < 0 || m.To >= len(procs) {
		panic(fmt.Sprintf("netsim: message to unknown processor %d", m.To))
	}
	p := procs[m.To]
	p.RaiseIRQ("atm", n.cfg.WAtm, func() {
		if n.cfg.WProto <= 0 {
			n.deliver(m)
			return
		}
		n.protoSeq++
		th := p.NewThread(fmt.Sprintf("NetMsg#%d", n.protoSeq), n.cfg.PrioNet)
		th.AddSegment(simkern.Segment{Name: "proto", Work: n.cfg.WProto, PT: simkern.PrioMax})
		th.OnComplete = func() { n.deliver(m) }
		th.Ready()
	})
}

func (n *Network) deliver(m *Message) {
	m.DeliveredAt = n.eng.Now()
	n.stats.Delivered++
	n.eng.Log().Recordf(n.eng.Now(), monitor.KindMessageRecv, m.To, m.Port, "from=n%d id=%d lat=%s", m.From, m.ID, m.DeliveredAt.Sub(m.SentAt))
	if hs := n.handlers[m.To]; hs != nil {
		if h := hs[m.Port]; h != nil {
			h(m)
			return
		}
	}
	// Unbound port: drop quietly but record, so tests can assert.
	n.eng.Log().Recordf(n.eng.Now(), monitor.KindMessageDrop, m.To, m.Port, "id=%d no handler", m.ID)
}

// noteDrop links message loss back into the causal tracing plane: a
// dropped payload implementing trace.Carrier marks every trace it
// carries violating, which forces full-history retention regardless of
// the sample rate — the "every omission carries its causal history"
// rule. Purely observational; the retry machinery above this layer is
// untouched.
func (n *Network) noteDrop(m *Message, why string) {
	c, ok := m.Payload.(trace.Carrier)
	if !ok {
		return
	}
	for _, tr := range c.TraceRefs() {
		tr.Violate("omission: %s id=%d %s", m.Port, m.ID, why)
	}
}

// WorstCaseReceivePath returns the CPU cost on the receiver for one
// message (interrupt + protocol), used by feasibility analyses that must
// account the NetMsg task as a sporadic kernel activity (§4.2).
func (n *Network) WorstCaseReceivePath() vtime.Duration { return n.cfg.WAtm + n.cfg.WProto }
