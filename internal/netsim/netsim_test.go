package netsim

import (
	"testing"

	"hades/internal/monitor"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

func twoNodes(t *testing.T, cfg Config) (*simkern.Engine, *Network) {
	t.Helper()
	eng := simkern.NewEngine(monitor.NewLog(0), 11)
	eng.AddProcessor("n0", 0)
	eng.AddProcessor("n1", 0)
	n := New(eng, cfg)
	n.Connect(0, 1, 100*us, 300*us)
	return eng, n
}

func TestDeliveryWithinBounds(t *testing.T) {
	eng, n := twoNodes(t, DefaultConfig())
	var got *Message
	n.Bind(1, "app", func(m *Message) { got = m })
	if _, err := n.Send(0, 1, "app", "payload", 8); err != nil {
		t.Fatal(err)
	}
	eng.RunUntilIdle()
	if got == nil {
		t.Fatal("not delivered")
	}
	lat := got.DeliveredAt.Sub(got.SentAt)
	min := 100*us + DefaultConfig().WAtm + DefaultConfig().WProto
	max := 300*us + DefaultConfig().WAtm + DefaultConfig().WProto + 100*us // queueing slack
	if lat < min || lat > max {
		t.Fatalf("latency %s outside [%s, %s]", lat, min, max)
	}
	if got.Payload != "payload" {
		t.Fatal("payload lost")
	}
}

func TestReceivePathChargesCPU(t *testing.T) {
	eng, n := twoNodes(t, DefaultConfig())
	n.Bind(1, "app", func(*Message) {})
	_, _ = n.Send(0, 1, "app", 1, 8)
	eng.RunUntilIdle()
	p1 := eng.Processors()[1]
	if p1.IRQTime() != DefaultConfig().WAtm {
		t.Fatalf("ATM IRQ time %s, want %s", p1.IRQTime(), DefaultConfig().WAtm)
	}
	if p1.BusyTime() != DefaultConfig().WProto {
		t.Fatalf("protocol time %s, want %s", p1.BusyTime(), DefaultConfig().WProto)
	}
	st := p1.IRQBySource()["atm"]
	if st == nil || st.Count != 1 {
		t.Fatal("atm IRQ not recorded")
	}
}

func TestFIFOPerLink(t *testing.T) {
	eng, n := twoNodes(t, DefaultConfig())
	var order []int
	n.Bind(1, "app", func(m *Message) { order = append(order, m.Payload.(int)) })
	for i := 0; i < 20; i++ {
		if _, err := n.Send(0, 1, "app", i, 8); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntilIdle()
	if len(order) != 20 {
		t.Fatalf("delivered %d", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, order)
		}
	}
}

func TestNoLinkError(t *testing.T) {
	eng := simkern.NewEngine(nil, 1)
	eng.AddProcessor("n0", 0)
	eng.AddProcessor("n1", 0)
	n := New(eng, DefaultConfig())
	if _, err := n.Send(0, 1, "x", nil, 0); err == nil {
		t.Fatal("send without link must fail")
	}
}

func TestNodeDownDropsTraffic(t *testing.T) {
	eng, n := twoNodes(t, DefaultConfig())
	delivered := 0
	n.Bind(1, "app", func(*Message) { delivered++ })
	n.SetNodeDown(1, true)
	_, _ = n.Send(0, 1, "app", 1, 8)
	eng.RunUntilIdle()
	if delivered != 0 {
		t.Fatal("crashed node received")
	}
	if n.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d", n.Stats().Dropped)
	}
	n.SetNodeDown(1, false)
	_, _ = n.Send(0, 1, "app", 2, 8)
	eng.RunUntilIdle()
	if delivered != 1 {
		t.Fatal("recovered node did not receive")
	}
}

type alwaysDrop struct{}

func (alwaysDrop) Judge(*Message) Verdict { return Verdict{Fate: FateDrop} }

type alwaysDelay struct{ extra vtime.Duration }

func (a alwaysDelay) Judge(*Message) Verdict { return Verdict{Fate: FateDelay, Extra: a.extra} }

func TestOmissionFault(t *testing.T) {
	eng, n := twoNodes(t, DefaultConfig())
	delivered := 0
	n.Bind(1, "app", func(*Message) { delivered++ })
	n.SetFault(alwaysDrop{})
	_, _ = n.Send(0, 1, "app", 1, 8)
	eng.RunUntilIdle()
	if delivered != 0 || n.Stats().Dropped != 1 {
		t.Fatalf("delivered=%d dropped=%d", delivered, n.Stats().Dropped)
	}
}

func TestPerformanceFault(t *testing.T) {
	eng, n := twoNodes(t, DefaultConfig())
	var at vtime.Time
	n.Bind(1, "app", func(m *Message) { at = m.DeliveredAt })
	n.SetFault(alwaysDelay{extra: 10 * ms})
	_, _ = n.Send(0, 1, "app", 1, 8)
	eng.RunUntilIdle()
	if at < vtime.Time(10*ms) {
		t.Fatalf("performance fault not applied: delivered at %s", at)
	}
	if n.Stats().Late != 1 {
		t.Fatalf("late = %d", n.Stats().Late)
	}
}

func TestMulticast(t *testing.T) {
	eng := simkern.NewEngine(monitor.NewLog(0), 5)
	for i := 0; i < 4; i++ {
		eng.AddProcessor("n", 0)
	}
	n := New(eng, DefaultConfig())
	n.ConnectAll([]int{0, 1, 2, 3}, 50*us, 100*us)
	got := map[int]bool{}
	for i := 1; i < 4; i++ {
		node := i
		n.Bind(node, "mc", func(*Message) { got[node] = true })
	}
	msgs, err := n.Multicast(0, []int{0, 1, 2, 3}, "mc", "x", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("multicast sent %d, want 3 (self excluded)", len(msgs))
	}
	eng.RunUntilIdle()
	if len(got) != 3 {
		t.Fatalf("delivered to %d nodes", len(got))
	}
}

func TestUnboundPortDropsQuietly(t *testing.T) {
	eng, n := twoNodes(t, DefaultConfig())
	_, _ = n.Send(0, 1, "nobody-listens", 1, 8)
	eng.RunUntilIdle()
	if n.Stats().Delivered != 1 {
		t.Fatal("message should count as delivered (then dropped at demux)")
	}
}

func TestDelayBounds(t *testing.T) {
	_, n := twoNodes(t, DefaultConfig())
	dmin, dmax, ok := n.DelayBounds(0, 1)
	if !ok || dmin != 100*us || dmax != 300*us {
		t.Fatalf("bounds %s/%s ok=%v", dmin, dmax, ok)
	}
	if _, _, ok := n.DelayBounds(0, 9); ok {
		t.Fatal("bounds for missing link")
	}
	if d, ok := n.DelayBound(1, 0); !ok || d != 300*us {
		t.Fatal("reverse link missing")
	}
}

// fourNodes builds a fully connected 4-node network.
func fourNodes(t *testing.T) (*simkern.Engine, *Network) {
	t.Helper()
	eng := simkern.NewEngine(monitor.NewLog(0), 11)
	nodes := []int{0, 1, 2, 3}
	for range nodes {
		eng.AddProcessor("n", 0)
	}
	n := New(eng, DefaultConfig())
	n.ConnectAll(nodes, 100*us, 300*us)
	return eng, n
}

func TestPartitionCutsCrossSideTraffic(t *testing.T) {
	eng, n := fourNodes(t)
	delivered := map[int]int{}
	for i := 0; i < 4; i++ {
		node := i
		n.Bind(node, "app", func(*Message) { delivered[node]++ })
	}
	n.SetPartition([]int{0, 1}, []int{2, 3})
	_, _ = n.Send(0, 2, "app", 1, 8) // cross-side: dropped
	_, _ = n.Send(0, 1, "app", 2, 8) // same side: delivered
	_, _ = n.Send(3, 2, "app", 3, 8) // same side: delivered
	_, _ = n.Send(2, 1, "app", 4, 8) // cross-side: dropped
	eng.RunUntilIdle()
	if delivered[2] != 1 || delivered[1] != 1 {
		t.Fatalf("same-side deliveries: %v", delivered)
	}
	if n.Stats().PartDropped != 2 {
		t.Fatalf("partition drops %d, want 2", n.Stats().PartDropped)
	}
	if !n.Partitioned(0, 2) || n.Partitioned(0, 1) {
		t.Fatal("Partitioned predicate wrong")
	}
}

func TestPartitionHealRestoresConnectivity(t *testing.T) {
	eng, n := fourNodes(t)
	delivered := 0
	n.Bind(2, "app", func(*Message) { delivered++ })
	n.SetPartition([]int{0, 1}, []int{2, 3})
	n.Heal()
	_, _ = n.Send(0, 2, "app", 1, 8)
	eng.RunUntilIdle()
	if delivered != 1 {
		t.Fatal("healed network did not deliver")
	}
	if n.PartitionActive() {
		t.Fatal("partition still active after heal")
	}
}

func TestPartitionDropsInFlightCopies(t *testing.T) {
	eng, n := fourNodes(t)
	delivered := 0
	n.Bind(2, "app", func(*Message) { delivered++ })
	// Send just before the cut: the copy is in flight (>= 100us of
	// link delay) when the partition lands at +1us.
	_, _ = n.Send(0, 2, "app", 1, 8)
	n.PartitionAt(eng.Now().Add(1*us), []int{0, 1}, []int{2, 3})
	eng.RunUntilIdle()
	if delivered != 0 {
		t.Fatal("in-flight copy survived the cut")
	}
	if n.Stats().PartDropped != 1 {
		t.Fatalf("partition drops %d, want 1", n.Stats().PartDropped)
	}
}

func TestPartitionUnlistedNodeReachesEverySide(t *testing.T) {
	eng, n := fourNodes(t)
	delivered := map[int]int{}
	for i := 0; i < 4; i++ {
		node := i
		n.Bind(node, "app", func(*Message) { delivered[node]++ })
	}
	// Node 3 is listed in no side: it stands outside the segmented
	// segment and keeps full connectivity.
	n.SetPartition([]int{0}, []int{1, 2})
	_, _ = n.Send(3, 0, "app", 1, 8)
	_, _ = n.Send(3, 1, "app", 2, 8)
	_, _ = n.Send(0, 3, "app", 3, 8)
	eng.RunUntilIdle()
	if delivered[0] != 1 || delivered[1] != 1 || delivered[3] != 1 {
		t.Fatalf("unlisted-node deliveries: %v", delivered)
	}
}

func TestPartitionChangeHooksFire(t *testing.T) {
	eng, n := fourNodes(t)
	var transitions []bool
	n.OnPartitionChange(func(p bool) { transitions = append(transitions, p) })
	n.PartitionAt(vtime.Time(1*ms), []int{0}, []int{1, 2, 3})
	n.HealAt(vtime.Time(2 * ms))
	eng.RunUntilIdle()
	if len(transitions) != 2 || !transitions[0] || transitions[1] {
		t.Fatalf("transitions %v, want [true false]", transitions)
	}
	// Healing twice is a no-op (no second callback).
	n.Heal()
	if len(transitions) != 2 {
		t.Fatal("idempotent heal fired a watcher")
	}
}

func TestPartitionRejectsNodeInTwoSides(t *testing.T) {
	_, n := fourNodes(t)
	defer func() {
		if recover() == nil {
			t.Fatal("node in two sides accepted")
		}
	}()
	n.SetPartition([]int{0, 1}, []int{1, 2})
}
