package txn

import (
	"fmt"

	"hades/internal/eventq"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/shard"
	"hades/internal/trace"
	"hades/internal/vtime"
)

// PartStats counts one participant shard's outcomes.
type PartStats struct {
	// Prepares counts distinct transactions prepared here.
	Prepares int
	// LockWaits counts prepares that queued behind a held lock.
	LockWaits int
	// VotesYes and VotesNo count the votes cast.
	VotesYes int
	VotesNo  int
	// Commits and Aborts count decisions executed.
	Commits int
	Aborts  int
	// DeadlineReleases counts YES-voted transactions whose locks were
	// released at the deadline with the decision still pending (the
	// parked-decision resolution path).
	DeadlineReleases int
	// HeldPastDeadline counts lock releases that happened after the
	// owning transaction's deadline — always zero under the protocol's
	// deadline discipline; Verify asserts it.
	HeldPastDeadline int
}

// prepState is one transaction's participant-side state.
type prepState uint8

const (
	// prepWaiting: queued behind a held lock, not yet voted.
	prepWaiting prepState = iota + 1
	// prepHeld: locks acquired, YES voted, decision pending.
	prepHeld
	// prepReleased: YES voted, locks released at the deadline, decision
	// resolution in flight.
	prepReleased
	// prepDone: decision executed (or NO voted).
	prepDone
)

// prep tracks one transaction at one participant shard.
type prep struct {
	id       ID
	ops      []Op
	deadline vtime.Time
	coord    int
	state    prepState
	votedYes bool
	commit   bool
	// applying counts outstanding write applies; the commit is acked
	// once it reaches zero (writes visibly in the primary's history).
	applying int
	acked    bool
	lockedAt vtime.Time
	// trace is the owning transaction's causal trace; lockSpan times a
	// prepare's wait behind a held lock.
	trace    trace.Ref
	lockSpan trace.SpanRef
}

// keys returns the prepare's lock set in op order (already
// deterministic: the client recorded ops in call order).
func (pr *prep) keys() []string {
	out := make([]string, 0, len(pr.ops))
	seen := make(map[string]bool, len(pr.ops))
	for _, op := range pr.ops {
		if !seen[op.Key] {
			seen[op.Key] = true
			out = append(out, op.Key)
		}
	}
	return out
}

// applyRef resolves one outstanding write apply.
type applyRef struct {
	id  ID
	key string
}

// overlayVal is one committed write awaiting its apply.
type overlayVal struct {
	cmd   int64
	reqID uint64
}

// Participant is the transaction-participant role of one shard group:
// it owns the per-key lock table of the keys this shard serves,
// prepares and votes on behalf of the group, executes decisions, and
// never holds a lock past the owning transaction's deadline.
type Participant struct {
	p     *Plane
	g     *shard.Group
	shard int

	// locks maps key → holding transaction; waiters queue in arrival
	// order (grants re-scan it FIFO — deterministic).
	locks   map[string]ID
	waiters []*prep
	preps   map[ID]*prep
	// applyWait resolves write applies (request ids) back to their
	// transaction and key.
	applyWait map[uint64]applyRef
	// overlay holds committed-but-not-yet-applied write values: a
	// waiter granted in the instant a commit releases its locks must
	// read the committed value, not the pre-apply state (the keyed view
	// only updates when the replication apply lands).
	overlay map[string]overlayVal

	// Stats counts outcomes for the harness.
	Stats PartStats
}

// newParticipant builds the participant role of one shard group and
// binds its port on every replica.
func newParticipant(p *Plane, g *shard.Group, idx int) *Participant {
	pa := &Participant{
		p:         p,
		g:         g,
		shard:     idx,
		locks:     make(map[string]ID),
		preps:     make(map[ID]*prep),
		applyWait: make(map[uint64]applyRef),
		overlay:   make(map[string]overlayVal),
	}
	for _, n := range g.Nodes() {
		node := n
		p.bind(node, p.partPort(), func(m *netsim.Message) { pa.handle(node, m) })
	}
	g.Replication().OnApplyHook(pa.onApply)
	// All participants sample into one gauge: the metrics plane sums
	// per-name funcs, so "txn.lockwait.depth" is the plane-wide count
	// of prepares queued behind a lock.
	p.eng.Metrics().GaugeFunc("txn.lockwait.depth", func() int64 { return int64(len(pa.waiters)) })
	return pa
}

// Shard returns the participant's shard index.
func (pa *Participant) Shard() int { return pa.shard }

// Group returns the underlying shard group.
func (pa *Participant) Group() *shard.Group { return pa.g }

// LockedKeys returns the number of currently held locks (harness and
// Verify use it to assert the end-of-run lock table drained).
func (pa *Participant) LockedKeys() int { return len(pa.locks) }

// handle dispatches one protocol message arriving at replica node.
func (pa *Participant) handle(node int, m *netsim.Message) {
	if pa.p.net.NodeDown(node) {
		return
	}
	switch env := m.Payload.(type) {
	case prepareEnv:
		pa.handlePrepare(node, m.From, env)
	case decisionEnv:
		pa.handleDecision(node, m.From, env)
	}
}

// handlePrepare serves one PREPARE (or its retry) at replica node.
// Only the current primary with a local quorum serves; other replicas
// stay silent and the coordinator's retry loop re-resolves.
func (pa *Participant) handlePrepare(node, from int, env prepareEnv) {
	if node != pa.g.Replication().Primary() || !pa.g.Membership().HasQuorum(node) {
		return
	}
	pr := pa.preps[env.ID]
	if pr != nil {
		// A retry: re-vote for states that already voted (the original
		// vote may have raced a coordinator failover); waiting prepares
		// vote when granted or at their deadline.
		if pr.state == prepHeld || pr.state == prepReleased {
			pa.vote(node, from, pr, true, "", false)
		}
		return
	}
	now := pa.p.eng.Now()
	if !now.Before(env.Deadline) {
		pa.Stats.VotesNo++
		pa.p.send(node, from, pa.p.coordPort(),
			voteEnv{ID: env.ID, Shard: pa.shard, Yes: false, Reason: "deadline passed", Deadline: true}, 32)
		return
	}
	pr = &prep{id: env.ID, ops: env.Ops, deadline: env.Deadline, coord: env.Coord, state: prepWaiting, trace: env.Trace}
	pa.preps[env.ID] = pr
	pa.Stats.Prepares++
	if pa.tryAcquire(pr) {
		pa.granted(node, from, pr)
	} else {
		pa.Stats.LockWaits++
		pr.lockSpan = pr.trace.Span(fmt.Sprintf("lock.wait.s%d", pa.shard), trace.LayerLock)
		pa.waiters = append(pa.waiters, pr)
		if log := pa.p.eng.Log(); log != nil {
			log.Recordf(now, monitor.KindLockWait, node, pr.id.String(), "shard %d: conflict on %v", pa.shard, pr.keys())
		}
	}
	pa.p.eng.At(env.Deadline, eventq.ClassApp, func() { pa.atDeadline(pr) })
}

// tryAcquire takes every lock of the prepare if all are free (locks
// are exclusive and all-or-nothing — partial acquisition under a
// deadline regime would just manufacture deadlock windows).
func (pa *Participant) tryAcquire(pr *prep) bool {
	for _, k := range pr.keys() {
		if _, held := pa.locks[k]; held {
			return false
		}
	}
	for _, k := range pr.keys() {
		pa.locks[k] = pr.id
	}
	pr.lockedAt = pa.p.eng.Now()
	return true
}

// granted votes YES for a prepare that holds all its locks, serving
// its reads from the primary's keyed view under those locks.
func (pa *Participant) granted(node, from int, pr *prep) {
	pr.state = prepHeld
	pr.votedYes = true
	pr.lockSpan.End()
	if log := pa.p.eng.Log(); log != nil {
		log.Recordf(pa.p.eng.Now(), monitor.KindPrepare, node, pr.id.String(), "shard %d: locked %v", pa.shard, pr.keys())
	}
	pa.vote(node, from, pr, true, "", false)
}

// vote sends one vote, attaching read results on YES. byDeadline marks
// NO votes forced by the deadline discipline (the structured abort
// cause the client's statistics rely on).
func (pa *Participant) vote(node, from int, pr *prep, yes bool, reason string, byDeadline bool) {
	var reads map[string]int64
	if yes {
		for _, op := range pr.ops {
			if op.Kind == OpRead {
				if reads == nil {
					reads = make(map[string]int64)
				}
				reads[op.Key] = pa.readKey(node, op.Key)
			}
		}
	}
	if yes {
		pa.Stats.VotesYes++
	} else {
		pa.Stats.VotesNo++
	}
	pa.p.send(node, from, pa.p.coordPort(),
		voteEnv{ID: pr.id, Shard: pa.shard, Yes: yes, Reason: reason, Deadline: byDeadline, Reads: reads}, 40)
}

// readKey serves one locked read: the last committed write — a
// committed-but-not-yet-applied value from the overlay first, then
// node's applied keyed view.
func (pa *Participant) readKey(node int, key string) int64 {
	if ov, ok := pa.overlay[key]; ok {
		return ov.cmd
	}
	v, _ := pa.g.KeyValue(node, key)
	return v
}

// atDeadline enforces the deadline discipline at this participant:
// a still-waiting prepare votes NO and leaves the queue; a YES-voted
// prepare releases its locks (never holding them into the fault
// window) and parks a decision query against the coordinator group.
func (pa *Participant) atDeadline(pr *prep) {
	switch pr.state {
	case prepWaiting:
		pr.state = prepDone
		pa.removeWaiter(pr)
		pr.lockSpan.End()
		pr.trace.Instant("shard %d: lock wait exceeded deadline", pa.shard)
		pa.Stats.Aborts++
		node := pa.g.Replication().Primary()
		if log := pa.p.eng.Log(); log != nil {
			log.Recordf(pa.p.eng.Now(), monitor.KindTxnAbort, node, pr.id.String(), "shard %d: lock wait exceeded deadline", pa.shard)
		}
		coordPrimary := pa.p.router.Groups()[pr.coord].Replication().Primary()
		pa.vote(node, coordPrimary, pr, false, "lock wait exceeded deadline", true)
	case prepHeld:
		pa.release(pr)
		pr.state = prepReleased
		pa.Stats.DeadlineReleases++
		if log := pa.p.eng.Log(); log != nil {
			log.Recordf(pa.p.eng.Now(), monitor.KindLockWait, pa.g.Replication().Primary(), pr.id.String(),
				"shard %d: released at deadline, decision pending", pa.shard)
		}
		env := queryEnv{ID: pr.id, Shard: pa.shard, Deadline: pr.deadline}
		pa.p.protoLoop(fmt.Sprintf("query.%s.s%d", pr.id, pa.shard), pa.g.Replication().Primary(),
			func() {
				from := pa.g.Replication().Primary()
				to := pa.p.router.Groups()[pr.coord].Replication().Primary()
				pa.p.send(from, to, pa.p.coordPort(), env, 32)
			},
			func() bool { return pr.state == prepDone })
	}
}

// release frees the prepare's locks, auditing the deadline discipline,
// and re-scans the wait queue.
func (pa *Participant) release(pr *prep) {
	now := pa.p.eng.Now()
	released := false
	for _, k := range pr.keys() {
		if pa.locks[k] == pr.id {
			delete(pa.locks, k)
			released = true
		}
	}
	if released && now.After(pr.deadline) {
		pa.Stats.HeldPastDeadline++
	}
	if released {
		pa.grantWaiters()
	}
}

// grantWaiters re-scans the wait queue in arrival order, granting
// every prepare whose lock set became free.
func (pa *Participant) grantWaiters() {
	remaining := pa.waiters[:0]
	for _, w := range pa.waiters {
		if w.state != prepWaiting {
			continue
		}
		if !pa.p.eng.Now().Before(w.deadline) {
			// Its deadline timer votes NO this same instant; granting
			// now would only acquire locks the coordinator is already
			// committed to aborting.
			remaining = append(remaining, w)
			continue
		}
		if pa.tryAcquire(w) {
			node := pa.g.Replication().Primary()
			coordPrimary := pa.p.router.Groups()[w.coord].Replication().Primary()
			pa.granted(node, coordPrimary, w)
			continue
		}
		remaining = append(remaining, w)
	}
	pa.waiters = remaining
}

// removeWaiter drops one prepare from the wait queue.
func (pa *Participant) removeWaiter(pr *prep) {
	remaining := pa.waiters[:0]
	for _, w := range pa.waiters {
		if w != pr {
			remaining = append(remaining, w)
		}
	}
	pa.waiters = remaining
}

// handleDecision executes one COMMIT/ABORT at replica node. Commits
// submit every write into the shard's replicated machine under the
// transaction tag space (idempotent across decision retries) and ack
// only once all writes applied; aborts release and ack immediately.
func (pa *Participant) handleDecision(node, from int, env decisionEnv) {
	if node != pa.g.Replication().Primary() {
		return // the coordinator's retry loop re-resolves the primary
	}
	pr := pa.preps[env.ID]
	if pr == nil {
		// Abort of a transaction never prepared here (prepare lost or
		// refused): nothing to undo.
		if !env.Commit {
			pa.p.send(node, from, pa.p.coordPort(), ackEnv{ID: env.ID, Shard: pa.shard}, 24)
		}
		return
	}
	if pr.state == prepDone {
		if pr.acked || !pr.commit {
			pa.p.send(node, from, pa.p.coordPort(), ackEnv{ID: env.ID, Shard: pa.shard}, 24)
		}
		return
	}
	prev := pr.state
	pr.state = prepDone
	pr.commit = env.Commit
	if !env.Commit {
		pa.release(pr)
		pa.Stats.Aborts++
		if log := pa.p.eng.Log(); log != nil {
			log.Recordf(pa.p.eng.Now(), monitor.KindTxnAbort, node, pr.id.String(), "shard %d: decision abort", pa.shard)
		}
		pa.p.send(node, from, pa.p.coordPort(), ackEnv{ID: env.ID, Shard: pa.shard}, 24)
		return
	}
	if prev == prepWaiting {
		// Cannot happen: the coordinator only commits on unanimous YES
		// votes, and this shard never voted. Guard anyway.
		pa.removeWaiter(pr)
	}
	pa.Stats.Commits++
	// Submit the writes (and publish their committed values in the
	// overlay) BEFORE releasing the locks: a waiter granted by the
	// release must read this transaction's committed values, not the
	// pre-apply state.
	for _, op := range pr.ops {
		if op.Kind != OpWrite {
			continue
		}
		reqID := pa.g.SubmitKeyed(op.Key, op.Cmd, pr.id.Client, op.Seq, pr.trace)
		pa.applyWait[reqID] = applyRef{id: pr.id, key: op.Key}
		pa.overlay[op.Key] = overlayVal{cmd: op.Cmd, reqID: reqID}
		pr.applying++
	}
	pa.release(pr)
	if pr.applying == 0 { // read-only at this shard
		pr.acked = true
		pa.p.send(node, from, pa.p.coordPort(), ackEnv{ID: env.ID, Shard: pa.shard}, 24)
	}
}

// onApply retires outstanding write applies (first apply anywhere in
// the group — the keyed view now holds the value, so the overlay entry
// drops); when a transaction's last write lands, the commit is acked
// to the coordinator's current primary.
func (pa *Participant) onApply(node int, reqID uint64, _ int64) {
	ref, ok := pa.applyWait[reqID]
	if !ok {
		return
	}
	delete(pa.applyWait, reqID)
	if ov, ok := pa.overlay[ref.key]; ok && ov.reqID == reqID {
		delete(pa.overlay, ref.key)
	}
	pr := pa.preps[ref.id]
	if pr == nil || pr.acked {
		return
	}
	pr.applying--
	if pr.applying > 0 {
		return
	}
	pr.acked = true
	from := pa.g.Replication().Primary()
	to := pa.p.router.Groups()[pr.coord].Replication().Primary()
	pa.p.send(from, to, pa.p.coordPort(), ackEnv{ID: ref.id, Shard: pa.shard}, 24)
}
