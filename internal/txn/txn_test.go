package txn

import (
	"testing"

	"hades/internal/vtime"
)

// The protocol end-to-end behaviour (commit/abort under crash and
// partition faults, deadline discipline, atomicity verification) is
// exercised through the cluster layer in internal/cluster/txn_test.go
// and the bank-transfer scenario test; these tests pin the pure parts.

func TestIDStrings(t *testing.T) {
	id := ID{Client: 6, Num: 3}
	if id.String() != "t6.3" {
		t.Fatalf("String %q", id.String())
	}
	if id.Key() != "txn:t6.3" {
		t.Fatalf("Key %q", id.Key())
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		StatusPending:   "pending",
		StatusCommitted: "committed",
		StatusAborted:   "aborted",
	} {
		if got := s.String(); got != want {
			t.Fatalf("Status(%d) = %q, want %q", s, got, want)
		}
	}
}

// TestPrepKeysDeduplicated: a transaction reading and writing the same
// key locks it once (the lock set is the distinct keys, op order).
func TestPrepKeysDeduplicated(t *testing.T) {
	pr := &prep{ops: []Op{
		{Kind: OpRead, Key: "a"},
		{Kind: OpWrite, Key: "b"},
		{Kind: OpWrite, Key: "a"},
	}}
	keys := pr.keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys %v, want [a b]", keys)
	}
}

// TestCoordTxnReplyable: commits are releasable to the client only
// once every participant acked; aborts immediately.
func TestCoordTxnReplyable(t *testing.T) {
	ct := &coordTxn{commit: true, parts: []*partState{{shard: 0}, {shard: 1, acked: true}}}
	if ct.replyable() {
		t.Fatal("commit replyable with an un-acked participant")
	}
	ct.parts[0].acked = true
	if !ct.replyable() {
		t.Fatal("fully acked commit not replyable")
	}
	abort := &coordTxn{commit: false, parts: []*partState{{shard: 0}}}
	if !abort.replyable() {
		t.Fatal("abort not immediately replyable")
	}
}

func TestCopyReads(t *testing.T) {
	if copyReads(nil) != nil {
		t.Fatal("nil map not preserved")
	}
	in := map[string]int64{"a": 1}
	out := copyReads(in)
	out["a"] = 2
	if in["a"] != 1 {
		t.Fatal("copy aliases the input")
	}
}

func TestDefaultsSane(t *testing.T) {
	if DefaultDeadline <= DefaultRetryTimeout {
		t.Fatal("default deadline does not cover even one retry timeout")
	}
	if loopbackDelay >= vtime.Millisecond {
		t.Fatal("loopback dispatch should be well under a link delay")
	}
}
