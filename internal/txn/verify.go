package txn

import (
	"fmt"

	"hades/internal/shard"
)

// Verify audits the atomic-commitment contract of a run against the
// shard groups' authoritative apply logs:
//
//   - all-or-nothing: every committed transaction's writes appear in
//     all owning shards' authoritative histories, each exactly once,
//     with the committed command;
//   - no partial writes: every aborted transaction's writes appear in
//     no shard's authoritative history;
//   - deadline discipline: no participant ever released a lock after
//     its transaction's deadline, and no lock belonging to an
//     expired-deadline transaction is still held.
//
// The authoritative history is the same hole-free-replica log the
// data-plane verifier uses (shard.Verify), so a plane that passes both
// checks has single-key linearizability AND multi-key atomicity on one
// set of histories.
func Verify(p *Plane) error {
	groups := p.router.Groups()
	type entryKey struct {
		client int
		seq    uint64
	}
	counts := make([]map[entryKey]int, len(groups))
	cmds := make([]map[entryKey]shard.Applied, len(groups))
	for i, g := range groups {
		node, ok := g.AuthoritativeNode()
		if !ok {
			return fmt.Errorf("txn: group %q has no hole-free replica to verify against", g.Name())
		}
		counts[i] = make(map[entryKey]int)
		cmds[i] = make(map[entryKey]shard.Applied)
		for _, a := range g.ApplyLog(node) {
			k := entryKey{client: a.Client, seq: a.Seq}
			counts[i][k]++
			cmds[i][k] = a
		}
	}
	for _, c := range p.clients {
		for _, rec := range c.Done {
			for _, op := range rec.Ops {
				if op.Kind != OpWrite {
					continue
				}
				k := entryKey{client: rec.ID.Client, seq: op.Seq}
				n := counts[op.Shard][k]
				switch rec.Status {
				case StatusCommitted:
					if n == 0 {
						return fmt.Errorf("txn: committed %s write %q (seq %d) missing from group %q history (torn transaction)",
							rec.ID, op.Key, op.Seq, groups[op.Shard].Name())
					}
					if n > 1 {
						return fmt.Errorf("txn: committed %s write %q (seq %d) applied %d times in group %q (exactly-once violated)",
							rec.ID, op.Key, op.Seq, n, groups[op.Shard].Name())
					}
					if a := cmds[op.Shard][k]; a.Cmd != op.Cmd || a.Key != op.Key {
						return fmt.Errorf("txn: committed %s write %q: history holds (key %q, cmd %d), client wrote (key %q, cmd %d)",
							rec.ID, op.Key, a.Key, a.Cmd, op.Key, op.Cmd)
					}
				case StatusAborted:
					if n != 0 {
						return fmt.Errorf("txn: aborted %s write %q (seq %d) present in group %q history (partial write leaked)",
							rec.ID, op.Key, op.Seq, groups[op.Shard].Name())
					}
				}
			}
		}
	}
	now := p.eng.Now()
	for _, pa := range p.parts {
		if pa.Stats.HeldPastDeadline > 0 {
			return fmt.Errorf("txn: shard %d released %d lock set(s) after their transaction deadlines", pa.shard, pa.Stats.HeldPastDeadline)
		}
		for key, id := range pa.locks {
			pr := pa.preps[id]
			if pr != nil && now.After(pr.deadline) {
				return fmt.Errorf("txn: shard %d still holds lock %q for %s past its deadline %s", pa.shard, key, id, pr.deadline)
			}
		}
	}
	return nil
}
