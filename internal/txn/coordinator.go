package txn

import (
	"fmt"
	"sort"

	"hades/internal/eventq"
	"hades/internal/metrics"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/replication"
	"hades/internal/session"
	"hades/internal/shard"
	"hades/internal/trace"
	"hades/internal/vtime"
)

// prepareTimeout and prepareRetries bound one PREPARE/decision send
// before the queue policy parks it: the timeout covers a request round
// trip, the budget one uncontended view change — the same calibration
// the data-plane client uses.
const (
	prepareTimeout = 5 * vtime.Millisecond
	prepareRetries = 8
)

// decisionTagSpace offsets the coordinator's decision-log dedup tags
// away from both the data-plane clients and the transaction writes.
const decisionTagSpace = uint64(1) << 33

// CoordStats counts one coordinator shard's outcomes.
type CoordStats struct {
	// Begins counts transaction submissions accepted (first receipt).
	Begins int
	// Redirects and Blocked count submissions bounced to the current
	// primary and stale-view rejections.
	Redirects int
	Blocked   int
	// Commits and Aborts count decisions; DeadlineAborts the subset
	// aborted because the deadline passed undecided.
	Commits        int
	Aborts         int
	DeadlineAborts int
	// Queries counts participant decision-resolution requests served.
	Queries int
}

// partState tracks one participant shard through a transaction.
type partState struct {
	shard    int
	ops      []Op
	voted    bool
	yes      bool
	reason   string
	acked    bool
	prepared bool // prepare loop started
	// prepSpan times PREPARE-to-vote; decSpan times decision-to-ack.
	prepSpan trace.SpanRef
	decSpan  trace.SpanRef
}

// coordTxn is one transaction's coordinator-side state. Like the shard
// layer's pending table it lives on the (conceptually replicated) role
// object shared by the group's replicas; the decision itself is
// additionally logged through the replicated machine.
type coordTxn struct {
	id       ID
	ops      []Op
	deadline vtime.Time
	client   int
	attempt  int
	parts    []*partState // ascending shard order (deterministic sends)
	reads    map[string]int64

	decided     bool
	commit      bool
	reason      string
	byDeadline  bool
	distributed bool
	decidedAt   vtime.Time

	// trace is the transaction's causal trace (shipped in by the client's
	// submission); logSpan times the replicated decision-log round.
	trace   trace.Ref
	logSpan trace.SpanRef
}

// part returns the participant state of one shard index.
func (ct *coordTxn) part(idx int) *partState {
	for _, ps := range ct.parts {
		if ps.shard == idx {
			return ps
		}
	}
	return nil
}

// decisionRec maps one replicated decision-log apply back to its
// transaction (the apply stream carries only request ids).
type decisionRec struct {
	id     ID
	commit bool
}

// decisionItem is one decision awaiting its (group-committed)
// replicated log round.
type decisionItem struct {
	rec decisionRec
	cmd int64
	tag replication.ClientSeq
}

// Coordinator is the transaction-coordinator role of one shard group:
// it accepts client submissions for transactions hashed onto its
// shard, drives PREPARE/COMMIT/ABORT, and logs every decision through
// the group's replicated machine before distributing it.
type Coordinator struct {
	p     *Plane
	g     *shard.Group
	shard int

	pending map[ID]*coordTxn
	// decided mirrors the replicated decision log at every replica:
	// node → transaction → commit. Maintained from the apply stream
	// (so it survives primary failover — followers applied the same
	// decision entries) and shipped to rejoining replicas through the
	// membership state transfer.
	decided map[int]map[ID]bool
	// pendingDecision resolves decision-log applies (request ids) back
	// to transactions.
	pendingDecision map[uint64]decisionRec
	// gc group-commits the decision log: one replicated round carries
	// many COMMIT/ABORT records (built lazily from the plane's knobs).
	gc *session.Batcher[decisionItem]
	// decisionRound maps each in-flight decision's request id to its
	// group-commit round; roundLeft counts a round's not-yet-applied
	// decisions. The first apply of a round's last decision retires the
	// round (gc.Complete), releasing the next coalesced batch.
	decisionRound map[uint64]int
	roundLeft     map[int]int
	nextRound     int

	// Metrics-plane decision counters (nil-safe when the plane is
	// off); the abort rate is the per-interval delta of mAborts.
	mCommits *metrics.Counter
	mAborts  *metrics.Counter

	// Stats counts outcomes for the harness.
	Stats CoordStats
	// GroupCommits counts decision-log rounds submitted; with batching
	// on, GroupCommits < Commits+Aborts measures the amortization.
	GroupCommits int
	// MaxDecisionBatch is the largest decision batch logged in one round.
	MaxDecisionBatch int
}

// newCoordinator builds the coordinator role of one shard group and
// binds its port on every replica.
func newCoordinator(p *Plane, g *shard.Group, idx int) *Coordinator {
	c := &Coordinator{
		p:               p,
		g:               g,
		shard:           idx,
		pending:         make(map[ID]*coordTxn),
		decided:         make(map[int]map[ID]bool),
		pendingDecision: make(map[uint64]decisionRec),
		decisionRound:   make(map[uint64]int),
		roundLeft:       make(map[int]int),
		mCommits:        p.eng.Metrics().Counter("txn.commits"),
		mAborts:         p.eng.Metrics().Counter("txn.aborts"),
	}
	for _, n := range g.Nodes() {
		node := n
		p.bind(node, p.coordPort(), func(m *netsim.Message) { c.handle(node, m) })
	}
	g.Replication().OnApplyHook(c.onApply)
	// A rejoining replica missed the decision entries applied while it
	// was away; the join/merge state transfer ships the mirror with the
	// rest of the group state.
	g.Membership().RegisterState("txn."+g.Name(), c.snapshotDecided, c.restoreDecided)
	return c
}

// Shard returns the coordinator's shard index.
func (c *Coordinator) Shard() int { return c.shard }

// Group returns the underlying shard group.
func (c *Coordinator) Group() *shard.Group { return c.g }

// snapshotDecided and restoreDecided move the decision mirror with the
// membership state-transfer path (donor's view → joiner).
func (c *Coordinator) snapshotDecided(donor, joiner int) any {
	if c.decided[joiner] == nil && c.g.Replication().Machine(joiner) == nil {
		return nil
	}
	src := c.g.Replication().Primary()
	if c.p.net.NodeDown(src) {
		src = donor
	}
	return copyDecided(c.decided[src])
}

func (c *Coordinator) restoreDecided(node int, data any) {
	d, ok := data.(map[ID]bool)
	if !ok || d == nil {
		return
	}
	c.decided[node] = copyDecided(d)
}

func copyDecided(in map[ID]bool) map[ID]bool {
	out := make(map[ID]bool, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// handle dispatches one protocol message arriving at replica node.
func (c *Coordinator) handle(node int, m *netsim.Message) {
	if c.p.net.NodeDown(node) {
		return
	}
	switch env := m.Payload.(type) {
	case beginEnv:
		c.handleBegin(node, m.From, env)
	case voteEnv:
		c.handleVote(node, env)
	case ackEnv:
		c.handleAck(env)
	case queryEnv:
		c.handleQuery(node, m.From, env)
	}
}

// handleBegin serves one client submission (or retry) at replica node.
func (c *Coordinator) handleBegin(node, from int, env beginEnv) {
	if !c.g.Membership().HasQuorum(node) {
		c.Stats.Blocked++
		c.p.send(node, from, c.p.respPort(), outcomeEnv{ID: env.ID, Attempt: env.Attempt, Kind: respBlocked}, 32)
		return
	}
	if p := c.g.Replication().Primary(); node != p {
		c.Stats.Redirects++
		c.p.send(node, from, c.p.respPort(), outcomeEnv{ID: env.ID, Attempt: env.Attempt, Kind: respRedirect, Primary: p}, 32)
		return
	}
	ct := c.pending[env.ID]
	if ct == nil {
		ct = c.admit(env)
	} else {
		ct.client, ct.attempt = env.Client, env.Attempt
	}
	// Reply only once the decision has both applied in the replicated
	// log (distributed is set by the apply stream — log-then-send) and,
	// for commits, been acknowledged by every participant. A retry
	// landing in the submit-to-apply window gets no answer and retries.
	if ct.decided && ct.distributed && ct.replyable() {
		c.reply(node, ct)
	}
}

// replyable reports whether the outcome may be released to the client:
// aborts immediately, commits only once every participant acknowledged
// its writes applied — so a client-visible commit implies the writes
// are in all owning shards' histories, the invariant Verify audits.
func (ct *coordTxn) replyable() bool {
	if !ct.commit {
		return true
	}
	for _, ps := range ct.parts {
		if !ps.acked {
			return false
		}
	}
	return true
}

// admit registers one fresh transaction and starts its two-phase
// commit — or aborts it immediately when its deadline already passed
// (deadline-aware admission: locks are never acquired for a
// transaction that cannot commit in time).
func (c *Coordinator) admit(env beginEnv) *coordTxn {
	ct := &coordTxn{
		id:       env.ID,
		ops:      env.Ops,
		deadline: env.Deadline,
		client:   env.Client,
		attempt:  env.Attempt,
		reads:    make(map[string]int64),
		trace:    env.Trace,
	}
	byShard := make(map[int]*partState)
	for _, op := range env.Ops {
		ps := byShard[op.Shard]
		if ps == nil {
			ps = &partState{shard: op.Shard}
			byShard[op.Shard] = ps
			ct.parts = append(ct.parts, ps)
		}
		ps.ops = append(ps.ops, op)
	}
	sort.Slice(ct.parts, func(i, j int) bool { return ct.parts[i].shard < ct.parts[j].shard })
	c.pending[env.ID] = ct
	c.Stats.Begins++
	now := c.p.eng.Now()
	if !now.Before(ct.deadline) {
		c.abortByDeadline(ct, "deadline passed before prepare")
		return ct
	}
	for _, ps := range ct.parts {
		c.sendPrepare(ct, ps)
	}
	c.p.eng.At(ct.deadline, eventq.ClassApp, func() {
		if !ct.decided {
			c.abortByDeadline(ct, "deadline: votes incomplete")
		}
	})
	return ct
}

// sendPrepare starts the retrying PREPARE loop towards one participant
// shard's current primary.
func (c *Coordinator) sendPrepare(ct *coordTxn, ps *partState) {
	if ps.prepared {
		return
	}
	ps.prepared = true
	ps.prepSpan = ct.trace.Span(fmt.Sprintf("2pc.prepare.s%d", ps.shard), trace.LayerWire)
	env := prepareEnv{ID: ct.id, Shard: ps.shard, Ops: ps.ops, Deadline: ct.deadline, Coord: c.shard, Trace: ct.trace}
	c.p.protoLoop(fmt.Sprintf("prep.%s.s%d", ct.id, ps.shard), c.g.Replication().Primary(),
		func() {
			from := c.g.Replication().Primary()
			to := c.p.router.Groups()[ps.shard].Replication().Primary()
			if log := c.p.eng.Log(); log != nil {
				log.Recordf(c.p.eng.Now(), monitor.KindPrepare, from, ct.id.String(), "-> shard %d (n%d)", ps.shard, to)
			}
			c.p.send(from, to, c.p.partPort(), env, 48)
		},
		func() bool { return ps.voted || ct.decided })
}

// handleVote records one participant vote.
func (c *Coordinator) handleVote(node int, env voteEnv) {
	ct := c.pending[env.ID]
	if ct == nil || ct.decided {
		return
	}
	ps := ct.part(env.Shard)
	if ps == nil || ps.voted {
		return
	}
	ps.voted, ps.yes, ps.reason = true, env.Yes, env.Reason
	ps.prepSpan.End()
	for k, v := range env.Reads {
		ct.reads[k] = v
	}
	if !env.Yes {
		ct.byDeadline = env.Deadline
		c.decide(ct, false, fmt.Sprintf("shard %d voted no: %s", env.Shard, env.Reason))
		return
	}
	for _, p := range ct.parts {
		if !p.voted || !p.yes {
			return
		}
	}
	if c.p.eng.Now().Before(ct.deadline) {
		c.decide(ct, true, "")
	} else {
		c.abortByDeadline(ct, "deadline: unanimous vote arrived late")
	}
}

// abortByDeadline is decide(false) with the structured deadline cause.
func (c *Coordinator) abortByDeadline(ct *coordTxn, reason string) {
	if !ct.decided {
		ct.byDeadline = true
	}
	c.decide(ct, false, reason)
}

// decide fixes the transaction's outcome exactly once: the decision is
// logged through the group's replicated machine (SubmitTagged — the
// dedup tag makes it idempotent, checkpoints and state transfers carry
// the table) and distributed only after the log entry applies locally.
func (c *Coordinator) decide(ct *coordTxn, commit bool, reason string) {
	if ct.decided {
		return
	}
	ct.decided, ct.commit, ct.reason = true, commit, reason
	ct.decidedAt = c.p.eng.Now()
	if commit {
		c.Stats.Commits++
		c.mCommits.Inc()
	} else {
		c.Stats.Aborts++
		c.mAborts.Inc()
		if ct.byDeadline {
			c.Stats.DeadlineAborts++
		}
	}
	if log := c.p.eng.Log(); log != nil {
		verdict := "abort"
		if commit {
			verdict = "commit"
		}
		log.Recordf(ct.decidedAt, monitor.KindDecide, c.g.Replication().Primary(), ct.id.String(), "%s %s", verdict, reason)
	}
	ct.logSpan = ct.trace.Span("2pc.decision.log", trace.LayerReplicate)
	cmd := int64(ct.id.Num) * 2
	if commit {
		cmd++
	}
	tag := replication.ClientSeq{Client: decisionTagSpace | (uint64(ct.id.Client) + 1), Seq: ct.id.Num}
	c.logDecision(decisionItem{rec: decisionRec{id: ct.id, commit: commit}, cmd: cmd, tag: tag})
}

// logDecision routes one decision into the replicated log through the
// group-commit batcher. The policy is the classic one: an idle log
// flushes the decision at once (zero added latency over a direct
// submit), and decisions arriving while a round is in flight coalesce
// into the next round, released when the in-flight round's entries
// apply — so amortization appears exactly when the log is loaded. The
// flush timer is only the fallback for a round lost to a crash, after
// which the log degrades to timer-paced rounds rather than wedging.
func (c *Coordinator) logDecision(item decisionItem) {
	if c.gc == nil {
		gc := c.p.groupCommit
		gc.PipelineDepth = 1
		c.gc = session.NewBatcher[decisionItem](c.p.eng, gc,
			fmt.Sprintf("txn.%s.gc", c.g.Name()), c.g.Replication().Primary(),
			func(lane string, items []decisionItem) {
				batch := make([]replication.BatchItem, len(items))
				for i, it := range items {
					batch[i] = replication.BatchItem{Cmd: it.cmd, Tag: it.tag}
				}
				ids := c.g.Replication().SubmitBatch(c.g.Replication().Primary(), batch)
				round := c.nextRound
				c.nextRound++
				c.roundLeft[round] = len(ids)
				for i, id := range ids {
					c.pendingDecision[id] = items[i].rec
					c.decisionRound[id] = round
				}
				c.GroupCommits++
				if len(items) > c.MaxDecisionBatch {
					c.MaxDecisionBatch = len(items)
				}
			})
		c.gc.EagerIdle = true
	}
	c.gc.Add("dec", item)
}

// onApply mirrors decision-log applies at every replica and, on the
// first apply anywhere, distributes the decision (log-then-send: the
// decision is in the replicated lineage before any participant acts).
func (c *Coordinator) onApply(node int, reqID uint64, _ int64) {
	rec, ok := c.pendingDecision[reqID]
	if !ok {
		return
	}
	d := c.decided[node]
	if d == nil {
		d = make(map[ID]bool)
		c.decided[node] = d
	}
	d[rec.id] = rec.commit
	// First apply of this decision anywhere retires it from its
	// group-commit round; the round's last retirement frees the log for
	// the next coalesced batch.
	if round, ok := c.decisionRound[reqID]; ok {
		delete(c.decisionRound, reqID)
		c.roundLeft[round]--
		if c.roundLeft[round] == 0 {
			delete(c.roundLeft, round)
			c.gc.Complete("dec")
		}
	}
	ct := c.pending[rec.id]
	if ct != nil && ct.decided && !ct.distributed {
		ct.logSpan.End()
		c.distribute(ct)
		if ct.replyable() {
			c.reply(c.g.Replication().Primary(), ct)
		}
	}
}

// distribute starts (once) the retrying decision sends towards every
// participant and, for aborts, towards any shard that never voted.
func (c *Coordinator) distribute(ct *coordTxn) {
	if ct.distributed {
		return
	}
	ct.distributed = true
	env := decisionEnv{ID: ct.id, Commit: ct.commit}
	for _, ps := range ct.parts {
		p := ps
		p.decSpan = ct.trace.Span(fmt.Sprintf("2pc.decide.s%d", p.shard), trace.LayerWire)
		c.p.protoLoop(fmt.Sprintf("dec.%s.s%d", ct.id, p.shard), c.g.Replication().Primary(),
			func() {
				from := c.g.Replication().Primary()
				to := c.p.router.Groups()[p.shard].Replication().Primary()
				c.p.send(from, to, c.p.partPort(), env, 24)
			},
			func() bool { return p.acked })
	}
}

// reply answers the transaction's client from the decided state.
func (c *Coordinator) reply(from int, ct *coordTxn) {
	env := outcomeEnv{
		ID:        ct.id,
		Attempt:   ct.attempt,
		Kind:      respOutcome,
		Committed: ct.commit,
		Reason:    ct.reason,
		Deadline:  ct.byDeadline,
		Reads:     copyReads(ct.reads),
	}
	c.p.send(from, ct.client, c.p.respPort(), env, 40)
}

// handleAck retires one participant's decision loop. Commit acks also
// complete the client reply path: the coordinator re-answers the
// client once every participant acknowledged (so a committed outcome
// implies the writes are applied in the owning histories).
func (c *Coordinator) handleAck(env ackEnv) {
	ct := c.pending[env.ID]
	if ct == nil {
		return
	}
	ps := ct.part(env.Shard)
	if ps == nil || ps.acked {
		return
	}
	ps.acked = true
	ps.decSpan.End()
	for _, p := range ct.parts {
		if !p.acked {
			return
		}
	}
	c.reply(c.g.Replication().Primary(), ct)
}

// handleQuery serves a participant's decision-resolution request: the
// decided verdict if one exists anywhere in this replica's mirror (or
// the shared pending table), a presumed abort if the deadline passed
// undecided — never an answer before the deadline.
func (c *Coordinator) handleQuery(node, from int, env queryEnv) {
	c.Stats.Queries++
	if commit, ok := c.decided[node][env.ID]; ok {
		c.p.send(node, from, c.p.partPort(), decisionEnv{ID: env.ID, Commit: commit}, 24)
		return
	}
	ct := c.pending[env.ID]
	if ct != nil {
		if ct.decided {
			if ct.distributed {
				// Applied in the replicated log (log-then-send); the
				// submit-to-apply window answers nothing — the query
				// loop retries.
				c.p.send(node, from, c.p.partPort(), decisionEnv{ID: env.ID, Commit: ct.commit}, 24)
			}
			return
		}
		if !c.p.eng.Now().Before(ct.deadline) {
			c.decide(ct, false, "deadline: resolved by participant query")
		}
		return
	}
	// Unknown transaction past its deadline: presumed abort (the
	// decision log holds no commit, so no participant applied).
	if !c.p.eng.Now().Before(env.Deadline) {
		c.p.send(node, from, c.p.partPort(), decisionEnv{ID: env.ID, Commit: false}, 24)
	}
}
