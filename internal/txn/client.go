package txn

import (
	"fmt"

	"hades/internal/eventq"
	"hades/internal/metrics"
	"hades/internal/netsim"
	"hades/internal/session"
	"hades/internal/shard"
	"hades/internal/trace"
	"hades/internal/vtime"
)

// Default client parameters: the retry timeout and budget mirror the
// data-plane client's calibration; the default deadline comfortably
// covers one fault-free two-phase commit round (two coordinator hops
// plus the prepare/vote/decision round trips) with slack for one
// crash-failover window.
const (
	DefaultRetryTimeout = 5 * vtime.Millisecond
	DefaultMaxRetries   = 8
	DefaultDeadline     = 30 * vtime.Millisecond
)

// ClientParams parameterises one transaction client.
type ClientParams struct {
	// Node is the client's processor (one transaction client per node
	// and per data plane; it may not share a node with a request client
	// — the cluster layer enforces it).
	Node int
	// RetryTimeout is the per-attempt reply timeout (0 selects the
	// default).
	RetryTimeout vtime.Duration
	// MaxRetries bounds consecutive timeouts before a submission parks
	// (0 selects the default).
	MaxRetries int
	// Deadline is the default relative transaction deadline used by
	// Begin (0 selects DefaultDeadline).
	Deadline vtime.Duration
}

// ClientStats counts one transaction client's outcomes.
type ClientStats struct {
	Begun     int
	Committed int
	Aborted   int
	// DeadlineAborts counts aborts caused by the deadline discipline —
	// a structured cause carried end-to-end from wherever it fired
	// (client queue, coordinator timer, participant lock wait).
	DeadlineAborts int
	Redirects      int
	Timeouts       int
	Retries        int
	Blocked        int
	Queued         int
	Resubmitted    int
	SumLatency     vtime.Duration
	MaxLatency     vtime.Duration
}

// AvgLatency returns the mean commit-call-to-outcome latency over
// decided transactions.
func (s ClientStats) AvgLatency() vtime.Duration {
	decided := s.Committed + s.Aborted
	if decided == 0 {
		return 0
	}
	return s.SumLatency / vtime.Duration(decided)
}

// Record is one decided transaction, kept for Verify.
type Record struct {
	ID        ID
	Ops       []Op
	Deadline  vtime.Time
	Status    Status
	Reason    string
	Reads     map[string]int64
	DecidedAt vtime.Time
}

// Txn is one transaction under construction or in flight. Build it
// with Read/Write, submit it with Commit; the outcome lands in the
// client's Done records (and OnDone, when set).
type Txn struct {
	id       ID
	deadline vtime.Time
	ops      []Op
	status   Status
	reason   string
	reads    map[string]int64

	committedCall bool
	submittedAt   vtime.Time
	target        int
	coordShard    int
	// call is the submission's session call (the shared retry
	// discipline; nil until dispatched).
	call *session.Call
	// trace is the transaction's causal trace; qspan and wspan time the
	// client-queue wait and the submission round trip.
	trace *trace.Trace
	qspan trace.SpanRef
	wspan trace.SpanRef

	// OnDone, when set, observes the decided transaction.
	OnDone func(Record)
}

// ID returns the transaction's identity.
func (t *Txn) ID() ID { return t.id }

// Status returns the transaction's current lifecycle state.
func (t *Txn) Status() Status { return t.status }

// Reason returns the abort reason (empty for commits).
func (t *Txn) Reason() string { return t.reason }

// Deadline returns the transaction's absolute virtual-time deadline.
func (t *Txn) Deadline() vtime.Time { return t.deadline }

// Read batches one keyed read; the value (the key's last committed
// write, 0 if none) is delivered with the commit outcome.
func (t *Txn) Read(key string) {
	if t.committedCall {
		panic("txn: Read after Commit")
	}
	t.ops = append(t.ops, Op{Kind: OpRead, Key: key})
}

// Client is the transaction session layer on one node: Begin/Read/
// Write/Commit batch keyed operations into deadline-carrying
// transactions submitted to the ring-chosen coordinator, with the
// data-plane retry discipline (timeout/retry, redirects, stale-view
// handling, park-and-resubmit after merge views) on the submission.
type Client struct {
	p *Plane
	c ClientParams

	nextTxn uint64
	nextSeq uint64

	queue    []*Txn // commit FIFO: one transaction in flight at a time
	inflight *Txn

	// Stats counts outcomes; Done records decided transactions for
	// Verify.
	Stats ClientStats
	Done  []Record

	// mCommitLat is the per-interval commit-latency histogram
	// (nil-safe when the metrics plane is off; aborts excluded).
	mCommitLat *metrics.Hist
}

// NewClient builds a transaction client on params.Node and wires its
// reactive paths: coordinator responses and router republications
// (in-flight submissions redirect). Parked submissions resubmit
// through the plane's session engine (any new agreed view, partition
// heals).
func NewClient(p *Plane, params ClientParams) *Client {
	if params.RetryTimeout <= 0 {
		params.RetryTimeout = DefaultRetryTimeout
	}
	if params.MaxRetries <= 0 {
		params.MaxRetries = DefaultMaxRetries
	}
	if params.Deadline <= 0 {
		params.Deadline = DefaultDeadline
	}
	c := &Client{p: p, c: params, mCommitLat: p.eng.Metrics().Hist("txn.commit.latency")}
	p.bind(params.Node, p.respPort(), c.handleResp)
	p.router.OnRepublish(c.redirectInflight)
	p.clients = append(p.clients, c)
	return c
}

// Node returns the client's processor.
func (c *Client) Node() int { return c.c.Node }

// Params returns the client's effective parameters.
func (c *Client) Params() ClientParams { return c.c }

// Begin opens a transaction with the client's default relative
// deadline.
func (c *Client) Begin() *Txn { return c.BeginWithDeadline(c.c.Deadline) }

// BeginWithDeadline opens a transaction whose deadline is d from now:
// if it has not committed by then, it deterministically aborts — locks
// are never held past it.
func (c *Client) BeginWithDeadline(d vtime.Duration) *Txn {
	c.nextTxn++
	c.Stats.Begun++
	return &Txn{
		id:       ID{Client: c.c.Node, Num: c.nextTxn},
		deadline: c.p.eng.Now().Add(d),
		status:   StatusPending,
	}
}

// Write batches one keyed write into the transaction, assigning its
// client-wide sequence number (its identity in the shard histories).
func (c *Client) Write(t *Txn, key string, cmd int64) {
	if t.committedCall {
		panic("txn: Write after Commit")
	}
	c.nextSeq++
	t.ops = append(t.ops, Op{Kind: OpWrite, Key: key, Cmd: cmd, Seq: c.nextSeq})
}

// Commit submits the transaction. Commits are a per-client session
// (FIFO): a later transaction waits for the earlier one's outcome, so
// one client's writes reach each key in sequence order. The outcome
// lands in Done (and t.OnDone).
func (c *Client) Commit(t *Txn) {
	if t.committedCall {
		panic("txn: Commit called twice")
	}
	if len(t.ops) == 0 {
		panic("txn: Commit of an empty transaction")
	}
	t.committedCall = true
	t.submittedAt = c.p.eng.Now()
	for i := range t.ops {
		t.ops[i].Shard = c.p.router.ShardFor(t.ops[i].Key)
	}
	t.coordShard = c.p.coordShard(t.id)
	t.trace = c.p.eng.Tracer().Begin("txn", t.coordShard)
	t.trace.SetLabel(t.id.String())
	t.qspan = t.trace.Span("queue.txn", trace.LayerQueue)
	c.queue = append(c.queue, t)
	// Deadline-aware admission at the client: a transaction still
	// queued behind the session when its deadline passes aborts without
	// ever acquiring a lock.
	c.p.eng.At(t.deadline, eventq.ClassApp, func() {
		if t.status == StatusPending && c.inflight != t {
			c.removeQueued(t)
			c.finish(t, false, "deadline passed in client queue", true, nil)
		}
	})
	c.pump()
}

// pump dispatches the next queued transaction when none is in flight.
func (c *Client) pump() {
	if c.inflight != nil || len(c.queue) == 0 {
		return
	}
	t := c.queue[0]
	c.queue = c.queue[1:]
	c.inflight = t
	c.dispatch(t)
}

// removeQueued drops one transaction from the commit queue.
func (c *Client) removeQueued(t *Txn) {
	q := c.queue[:0]
	for _, x := range c.queue {
		if x != t {
			q = append(q, x)
		}
	}
	c.queue = q
}

// dispatch starts the submission's session call: attempts send the
// transaction at the coordinator group's current primary, with the
// shared retry discipline (timeout/retry, park-and-resubmit on view
// installs and heals — a transaction submission is never abandoned;
// the coordinator's deadline discipline decides it, and the outcome
// query is idempotent).
func (c *Client) dispatch(t *Txn) {
	g := c.p.router.Groups()[t.coordShard]
	t.qspan.End()
	t.wspan = t.trace.Span("rpc.txn", trace.LayerWire)
	t.call = c.p.sess.Go(session.Spec{
		Label:      t.id.String(),
		Node:       c.c.Node,
		Timeout:    c.c.RetryTimeout,
		MaxRetries: c.c.MaxRetries,
		Send: func(attempt int) {
			t.target = g.Replication().Primary()
			env := beginEnv{ID: t.id, Ops: t.ops, Deadline: t.deadline, Client: c.c.Node, Attempt: attempt, Trace: t.trace.Ref()}
			c.p.send(c.c.Node, t.target, c.p.coordPort(), env, 64)
		},
		Traces:     []trace.Ref{t.trace.Ref()},
		Done:       func() bool { return t.status != StatusPending },
		OnTimeout:  func() { c.Stats.Timeouts++ },
		OnRetry:    func() { c.Stats.Retries++ },
		OnPark:     func() { c.Stats.Queued++ },
		OnResubmit: func() { c.Stats.Resubmitted++ },
	})
}

// redirectInflight re-resolves the in-flight submission when its
// coordinator shard republishes ownership.
func (c *Client) redirectInflight(g *shard.Group) {
	t := c.inflight
	if t == nil || t.status != StatusPending || t.call == nil || !t.call.Inflight() || t.coordShard != g.Index() {
		return
	}
	if p := g.Replication().Primary(); p != t.target {
		c.Stats.Redirects++
		t.call.Redirect(fmt.Sprintf("republish: n%d -> n%d", t.target, p))
	}
}

// handleResp consumes one coordinator response.
func (c *Client) handleResp(m *netsim.Message) {
	env, ok := m.Payload.(outcomeEnv)
	if !ok {
		return
	}
	t := c.inflight
	if t == nil || t.id != env.ID || t.status != StatusPending {
		return // a late duplicate of a decided transaction
	}
	switch env.Kind {
	case respOutcome:
		c.finish(t, env.Committed, env.Reason, env.Deadline, env.Reads)
	case respRedirect:
		if !t.call.Inflight() || env.Attempt != t.call.Attempt() {
			return // a superseded attempt's verdict
		}
		c.Stats.Redirects++
		t.call.Redirect(fmt.Sprintf("server: n%d -> n%d", t.target, env.Primary))
	case respBlocked:
		if !t.call.Inflight() || env.Attempt != t.call.Attempt() {
			return
		}
		c.Stats.Blocked++
		t.call.Fail("blocked")
	}
}

// finish records one decided transaction and hands the session to the
// next queued one. byDeadline is the structured abort cause carried
// end-to-end from wherever the deadline discipline fired.
func (c *Client) finish(t *Txn, committed bool, reason string, byDeadline bool, reads map[string]int64) {
	if t.status != StatusPending {
		return
	}
	if committed {
		t.status = StatusCommitted
		c.Stats.Committed++
	} else {
		t.status = StatusAborted
		c.Stats.Aborted++
		if byDeadline {
			c.Stats.DeadlineAborts++
		}
	}
	t.reason = reason
	t.reads = reads
	if t.call != nil {
		t.call.Finish()
	}
	t.wspan.End()
	if committed {
		t.trace.SetClass("txn.commit")
	} else {
		t.trace.SetClass("txn.abort")
		t.trace.Violate("abort: %s", reason)
	}
	t.trace.Finish()
	now := c.p.eng.Now()
	lat := now.Sub(t.submittedAt)
	if committed {
		c.mCommitLat.ObserveD(lat)
	}
	c.Stats.SumLatency += lat
	if lat > c.Stats.MaxLatency {
		c.Stats.MaxLatency = lat
	}
	rec := Record{
		ID:        t.id,
		Ops:       append([]Op(nil), t.ops...),
		Deadline:  t.deadline,
		Status:    t.status,
		Reason:    reason,
		Reads:     reads,
		DecidedAt: now,
	}
	c.Done = append(c.Done, rec)
	if t.OnDone != nil {
		t.OnDone(rec)
	}
	if c.inflight == t {
		c.inflight = nil
	}
	c.pump()
}

// Transfer is the canonical two-key transaction: read both accounts,
// debit from, credit to. It returns the submitted transaction.
func (c *Client) Transfer(from, to string, amount int64) *Txn {
	t := c.Begin()
	t.Read(from)
	t.Read(to)
	c.Write(t, from, -amount)
	c.Write(t, to, amount)
	c.Commit(t)
	return t
}

// String renders the client for debugging.
func (c *Client) String() string {
	return fmt.Sprintf("txn.Client{n%d begun=%d committed=%d aborted=%d}", c.c.Node, c.Stats.Begun, c.Stats.Committed, c.Stats.Aborted)
}
