// Package txn gives the sharded data plane multi-key atomic
// transactions: two-phase commit where both the coordinator log and
// the participants are the existing replicated groups, and every
// transaction carries a virtual-time deadline.
//
// The layering follows the middleware argument (Kim & Kumar; YASMIN):
// coordination primitives must compose with timing guarantees, so the
// commit protocol is deadline-aware rather than best-effort blocking —
// a prepare that cannot complete by the transaction's deadline
// (timeout, lock conflict, stale-view rejection, partition window)
// deterministically aborts and releases its locks instead of holding
// them into the fault window.
//
//   - The client (Begin/Read/Write/Commit) batches keyed operations
//     and submits the whole transaction to its coordinator — the shard
//     group chosen by hashing the transaction id on the existing
//     consistent-hash ring. The submission rides the PR 4 session
//     discipline: timeout/retry, redirect-following, stale-view
//     handling, and parking with resubmission after merge views.
//   - The coordinator drives PREPARE to every owning shard's primary,
//     collects votes, and logs its COMMIT/ABORT decision through
//     replication.SubmitTagged into its own replicated machine before
//     distributing it — every replica of the coordinator group mirrors
//     the decision from the apply stream, the dedup tag makes the log
//     entry idempotent, and a rejoining replica receives the decision
//     table through the membership state transfer, so the decision
//     survives crash failover exactly as far as the group state does.
//   - Participants acquire per-key locks in the session layer and vote.
//     A conflicting prepare waits in the lock queue (LockWait) until
//     its deadline; an unserved prepare votes NO at the deadline. A
//     YES-voted participant never holds locks past the deadline either:
//     at the deadline it releases them and resolves the pending
//     decision by querying the coordinator group — queries park during
//     partition windows and resubmit after the merge view, the same
//     queue policy the data-plane client uses.
//
// Verify asserts the atomic-commitment contract after a run: every
// committed transaction's writes appear exactly once in all owning
// shards' authoritative histories, every aborted transaction's writes
// appear in none, and no participant held a lock past its deadline.
package txn

import (
	"fmt"

	"hades/internal/eventq"
	"hades/internal/netsim"
	"hades/internal/session"
	"hades/internal/shard"
	"hades/internal/simkern"
	"hades/internal/trace"
	"hades/internal/vtime"
)

// ID identifies one transaction: the submitting client's node plus its
// per-client transaction number.
type ID struct {
	Client int
	Num    uint64
}

// String renders the id ("t6.3").
func (id ID) String() string { return fmt.Sprintf("t%d.%d", id.Client, id.Num) }

// Key returns the ring key the coordinator shard is chosen by.
func (id ID) Key() string { return "txn:" + id.String() }

// OpKind classifies one keyed operation.
type OpKind uint8

const (
	// OpRead locks the key and returns its current value at prepare
	// time (the last committed write, 0 if never written).
	OpRead OpKind = iota + 1
	// OpWrite locks the key and, on commit, applies Cmd to the owning
	// shard's replicated machine.
	OpWrite
)

// Op is one keyed operation of a transaction.
type Op struct {
	Kind OpKind
	Key  string
	// Cmd is the written command (writes only).
	Cmd int64
	// Seq is the client-wide write sequence number — the write's
	// identity in the owning shard's apply log and dedup table.
	Seq uint64
	// Shard is the owning shard index, resolved at commit time.
	Shard int
}

// Status is a transaction's lifecycle state.
type Status uint8

const (
	// StatusPending: building, queued, or awaiting its outcome.
	StatusPending Status = iota
	// StatusCommitted: all participants voted yes before the deadline.
	StatusCommitted
	// StatusAborted: a participant voted no, or the deadline passed
	// before the decision.
	StatusAborted
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return "pending"
	}
}

// respKind classifies a coordinator's response to a client submission.
type respKind uint8

const (
	// respOutcome carries the decision (Committed + reads).
	respOutcome respKind = iota + 1
	// respRedirect names the coordinator group's current primary.
	respRedirect
	// respBlocked is the stale-view rejection: the receiving replica
	// cannot reach a majority of its installed view.
	respBlocked
)

// beginEnv is one client transaction submission crossing the wire.
// Attempt echoes back in failure responses so superseded attempts'
// verdicts are discarded (the PR 4 discipline).
type beginEnv struct {
	ID       ID
	Ops      []Op
	Deadline vtime.Time
	Client   int
	Attempt  int
	// Trace is the transaction's causal trace (the generation-checked
	// ref is the propagation format in the single-process simulation;
	// the zero ref when tracing is off).
	Trace trace.Ref
}

// TraceRefs lets the network mark the carried trace on message drops.
func (e beginEnv) TraceRefs() []trace.Ref {
	return []trace.Ref{e.Trace}
}

// outcomeEnv is the coordinator's response to a submission. Deadline
// marks aborts caused by the deadline discipline (a structured cause;
// reasons are human-readable detail only).
type outcomeEnv struct {
	ID        ID
	Attempt   int
	Kind      respKind
	Committed bool
	Reason    string
	Deadline  bool
	Reads     map[string]int64
	Primary   int // respRedirect only
}

// prepareEnv asks one owning shard to lock and vote.
type prepareEnv struct {
	ID       ID
	Shard    int
	Ops      []Op
	Deadline vtime.Time
	// Coord is the coordinator shard index (decision queries resolve
	// against its current primary).
	Coord int
	// Trace is the owning transaction's causal trace (the zero ref
	// when tracing is off).
	Trace trace.Ref
}

// TraceRefs lets the network mark the carried trace on message drops.
func (e prepareEnv) TraceRefs() []trace.Ref {
	return []trace.Ref{e.Trace}
}

// voteEnv is a participant's vote. Deadline marks NO votes cast
// because the deadline discipline fired (lock wait expired, prepare
// arrived late).
type voteEnv struct {
	ID       ID
	Shard    int
	Yes      bool
	Reason   string
	Deadline bool
	Reads    map[string]int64
}

// decisionEnv distributes the logged COMMIT/ABORT decision.
type decisionEnv struct {
	ID     ID
	Commit bool
}

// ackEnv confirms a participant executed the decision (commits are
// acked only after every write applied at the participant's primary,
// so a client-visible commit implies the writes are in the histories).
type ackEnv struct {
	ID    ID
	Shard int
}

// queryEnv is a participant's decision-resolution request for a
// YES-voted transaction whose decision had not arrived by the deadline.
type queryEnv struct {
	ID       ID
	Shard    int
	Deadline vtime.Time
}

// loopbackDelay stands in for the network link when the sender and
// receiver are the same node (a transaction whose coordinator group
// also owns some of its keys): the local dispatch cost, well under any
// real link delay.
const loopbackDelay = 10 * vtime.Microsecond

// Plane is the transaction layer over one sharded data plane: a
// coordinator and a participant role per shard group, the clients, and
// the shared retry machinery. Create it with NewPlane, one per
// shard.Router.
type Plane struct {
	eng    *simkern.Engine
	net    *netsim.Network
	router *shard.Router
	name   string

	coords  []*Coordinator
	parts   []*Participant
	clients []*Client

	// local maps node → port → handler for loopback delivery (netsim
	// has no self-links).
	local map[int]map[string]func(*netsim.Message)

	// sess runs the retry discipline for every role of the plane
	// (client submissions, PREPARE/decision/query loops) — one engine,
	// poked by view installs and partition heals.
	sess *session.Engine
	// groupCommit batches the coordinators' decision-log submissions
	// (zero value: every decision its own replicated round).
	groupCommit session.Params
}

// NewPlane builds the transaction layer over a router's shard groups:
// one coordinator and one participant role per group, wired so that
// any view install or partition heal re-probes parked work.
func NewPlane(eng *simkern.Engine, net *netsim.Network, router *shard.Router, name string) *Plane {
	p := &Plane{
		eng:    eng,
		net:    net,
		router: router,
		name:   name,
		local:  make(map[int]map[string]func(*netsim.Message)),
		sess:   session.New(eng),
	}
	for i, g := range router.Groups() {
		p.coords = append(p.coords, newCoordinator(p, g, i))
		p.parts = append(p.parts, newParticipant(p, g, i))
	}
	for _, g := range router.Groups() {
		p.sess.WireViews(g.Membership())
	}
	p.sess.WireHeals(net)
	return p
}

// SetGroupCommit sets the coordinator decision-log batching knobs
// (call before transactions run; the zero value keeps one replicated
// round per decision).
func (p *Plane) SetGroupCommit(params session.Params) { p.groupCommit = params }

// Name returns the plane's scope name (the shard set's name).
func (p *Plane) Name() string { return p.name }

// Router returns the underlying shard router.
func (p *Plane) Router() *shard.Router { return p.router }

// Coordinators returns the per-shard coordinator roles, ring order.
func (p *Plane) Coordinators() []*Coordinator { return append([]*Coordinator(nil), p.coords...) }

// Participants returns the per-shard participant roles, ring order.
func (p *Plane) Participants() []*Participant { return append([]*Participant(nil), p.parts...) }

// Clients returns the transaction clients, creation order.
func (p *Plane) Clients() []*Client { return append([]*Client(nil), p.clients...) }

// coordShard returns the coordinator shard index for a transaction:
// its id hashed on the existing ring (pinned key routes do not apply —
// coordinator placement is not key ownership).
func (p *Plane) coordShard(id ID) int { return p.router.Ring().Shard(id.Key()) }

// coordPort, partPort and respPort scope the plane's wire protocol per
// shard set, so coexisting data planes do not collide.
func (p *Plane) coordPort() string { return "txn." + p.name + ".coord" }
func (p *Plane) partPort() string  { return "txn." + p.name + ".part" }
func (p *Plane) respPort() string  { return "txn." + p.name + ".resp" }

// bind registers a handler with the network and the loopback table.
func (p *Plane) bind(node int, port string, h func(*netsim.Message)) {
	p.net.Bind(node, port, h)
	m := p.local[node]
	if m == nil {
		m = make(map[string]func(*netsim.Message))
		p.local[node] = m
	}
	m[port] = h
}

// send transmits one protocol message, falling back to a loopback
// dispatch when sender and receiver are the same node.
func (p *Plane) send(from, to int, port string, payload any, size int) {
	if from != to {
		_, _ = p.net.Send(from, to, port, payload, size)
		return
	}
	if p.net.NodeDown(from) {
		return
	}
	p.eng.After(loopbackDelay, eventq.ClassApp, func() {
		if p.net.NodeDown(to) {
			return
		}
		h := p.local[to][port]
		if h == nil {
			return
		}
		h(&netsim.Message{From: from, To: to, Port: port, Payload: payload, Size: size, SentAt: p.eng.Now()})
	})
}

// protoLoop starts one fire-and-observe protocol loop (PREPARE,
// decision distribution, decision query) on the plane's session
// engine: the shared retry discipline with completion observed
// out-of-band through done.
func (p *Plane) protoLoop(label string, node int, send func(), done func() bool) {
	p.sess.Go(session.Spec{
		Label:      label,
		Node:       node,
		Timeout:    prepareTimeout,
		MaxRetries: prepareRetries,
		Send:       func(int) { send() },
		Done:       done,
	})
}

// copyReads freezes a read-result map for shipping.
func copyReads(in map[string]int64) map[string]int64 {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]int64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
