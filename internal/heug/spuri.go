package heug

import (
	"fmt"

	"hades/internal/vtime"
)

// SpuriTask is the task model of [Spu96] used in the paper's §5 example:
// sporadic tasks with arbitrary deadlines and resource sharing. Each task
// uses at most one resource S for a contiguous section of length CS,
// preceded by CBefore and followed by CAfter of plain computation
// (C = CBefore + CS + CAfter).
type SpuriTask struct {
	Name string
	Node int
	// CBefore, CS, CAfter decompose the worst-case computation time.
	CBefore, CS, CAfter vtime.Duration
	// Resource is the shared resource S; empty when CS is zero.
	Resource string
	// Deadline is D_i, relative to the activation request.
	Deadline vtime.Duration
	// PseudoPeriod is T_i, the minimum inter-arrival time.
	PseudoPeriod vtime.Duration
	// Blocking is B'_i, the worst-case blocking time the task can
	// experience due to resource sharing (under SRP: the longest outer
	// critical section of a task with a larger relative deadline).
	Blocking vtime.Duration
}

// C returns the task's total worst-case computation time.
func (s SpuriTask) C() vtime.Duration { return s.CBefore + s.CS + s.CAfter }

// Utilization returns C/T.
func (s SpuriTask) Utilization() float64 {
	return float64(s.C()) / float64(s.PseudoPeriod)
}

// ToHEUG performs the Figure 3 translation: the Spuri task becomes a
// three-unit chain
//
//	eu1 (w = c_before) → eu2 (w = cs, holding S) → eu3 (w = c_after)
//
// with the task deadline D = D_i and, on the first unit, the latest start
// time attribute set to B'_i: under SRP a job is blocked only before it
// starts, for at most B'_i, so a later start signals that the blocking
// budget assumed by the feasibility test was exceeded — exactly the kind
// of assumption-coverage monitoring §2.1 calls for.
//
// Units with zero cost are elided (a task that uses no resource becomes a
// single unit), so the translation is total on well-formed SpuriTasks.
func (s SpuriTask) ToHEUG() (*Task, error) {
	if s.C() <= 0 {
		return nil, fmt.Errorf("heug: spuri task %q has no computation time", s.Name)
	}
	if s.CS > 0 && s.Resource == "" {
		return nil, fmt.Errorf("heug: spuri task %q has a critical section but no resource", s.Name)
	}
	if s.CS == 0 && s.Resource != "" {
		return nil, fmt.Errorf("heug: spuri task %q names resource %q but has no critical section", s.Name, s.Resource)
	}
	b := NewTask(s.Name, SporadicEvery(s.PseudoPeriod)).WithDeadline(s.Deadline)
	var chain []string
	add := func(name string, w vtime.Duration, res []ResourceReq) {
		if w <= 0 {
			return
		}
		eu := CodeEU{Node: s.Node, WCET: w, Resources: res}
		if len(chain) == 0 && s.Blocking > 0 {
			eu.Latest = s.Blocking
		}
		b.Code(name, eu)
		chain = append(chain, name)
	}
	add(s.Name+".eu1", s.CBefore, nil)
	add(s.Name+".eu2", s.CS, []ResourceReq{{Resource: s.Resource, Mode: Exclusive}})
	add(s.Name+".eu3", s.CAfter, nil)
	b.Chain(chain...)
	return b.Build()
}
