// Package heug implements the HADES generic task model (§3 of the paper).
//
// Every activity in HADES — application task, middleware service, or
// scheduler — is a task: a directed acyclic graph of elementary units
// (a "HEUG", Hades Elementary Unit Graph). An elementary unit is either
// a Code_EU (a sequence of code with a known worst-case execution time,
// statically assigned to a processor, touching only processor-local
// resources) or an Inv_EU (a synchronous or asynchronous request to
// execute another task). Edges are precedence constraints, optionally
// carrying named parameters that transfer data between units; a
// constraint whose endpoints live on different processors is *remote*
// and models an invocation of the NetMsg communication task.
//
// Synchronisation beyond precedence uses processor-local resources
// (shared/exclusive access modes) and system-wide boolean condition
// variables, which a Code_EU may wait on before starting. Actions
// themselves may not block — the paper forbids synchronisation inside
// actions so their WCETs remain well-defined (§3.3); this API enforces
// that structurally: an Action is a straight-line effect function that
// executes at the unit's completion instant.
package heug

import (
	"hades/internal/vtime"
)

// ArrivalKind classifies a task's activation-request arrival law (§3.1.2).
type ArrivalKind uint8

// Arrival laws.
const (
	// Periodic: successive activations separated by exactly Period.
	Periodic ArrivalKind = iota + 1
	// Sporadic: successive activations separated by at least Period
	// (the pseudo-period).
	Sporadic
	// Aperiodic: arbitrary separation; no law to enforce or monitor.
	Aperiodic
)

// String returns the law's name.
func (k ArrivalKind) String() string {
	switch k {
	case Periodic:
		return "periodic"
	case Sporadic:
		return "sporadic"
	case Aperiodic:
		return "aperiodic"
	default:
		return "unknown"
	}
}

// Arrival is a task's activation law. For Periodic tasks Period is the
// period and Offset the release offset of the first activation; for
// Sporadic tasks Period is the pseudo-period (minimum inter-arrival
// time); for Aperiodic tasks both fields are ignored.
type Arrival struct {
	Kind   ArrivalKind
	Period vtime.Duration
	Offset vtime.Duration
}

// PeriodicEvery returns a periodic arrival law.
func PeriodicEvery(period vtime.Duration) Arrival {
	return Arrival{Kind: Periodic, Period: period}
}

// SporadicEvery returns a sporadic arrival law with the given
// pseudo-period.
func SporadicEvery(pseudoPeriod vtime.Duration) Arrival {
	return Arrival{Kind: Sporadic, Period: pseudoPeriod}
}

// AperiodicLaw returns the aperiodic (unconstrained) arrival law.
func AperiodicLaw() Arrival { return Arrival{Kind: Aperiodic} }

// AccessMode controls simultaneous use of a resource (§3.1.1).
type AccessMode uint8

// Access modes.
const (
	// Shared allows any number of concurrent shared holders.
	Shared AccessMode = iota + 1
	// Exclusive allows a single holder.
	Exclusive
)

// String returns the mode's name.
func (m AccessMode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

// ResourceReq names a resource a Code_EU needs for its whole execution,
// with the requested access mode. All resources are granted before the
// unit starts and released when it ends — the task model's way of making
// blocking times statically analysable.
type ResourceReq struct {
	Resource string
	Mode     AccessMode
}

// ActionContext is the execution context handed to an action. It is
// implemented by the dispatcher. All effects (parameter writes, condition
// variable updates, resource-state updates) are applied at the unit's
// completion instant, on the unit's processor.
type ActionContext interface {
	// Now returns the current virtual time.
	Now() vtime.Time
	// Node returns the processor the unit runs on.
	Node() int
	// Instance returns the activation sequence number (1-based) of the
	// task instance this unit belongs to.
	Instance() uint64
	// TaskName returns the owning task's name.
	TaskName() string
	// In returns the value carried by the named in-edge parameter,
	// or (nil, false) when absent.
	In(param string) (any, bool)
	// Out sets the value carried on all out-edges declaring param.
	Out(param string, value any)
	// SetCond sets a system-wide condition variable (§3.1.1).
	SetCond(name string)
	// ClearCond clears a system-wide condition variable.
	ClearCond(name string)
	// ResourceState reads the local state attached to a resource the
	// unit holds.
	ResourceState(name string) any
	// SetResourceState updates the local state attached to a resource
	// the unit holds.
	SetResourceState(name string, v any)
}

// Action is the effect function of a Code_EU. It must not block — the
// unit's CPU demand is modelled by its WCET, and the action's effects
// apply atomically at completion.
type Action func(ctx ActionContext)

// CodeEU is a sequence of code with statically known cost (§3.1).
type CodeEU struct {
	// Node is the processor the unit is statically assigned to.
	Node int
	// WCET is the unit's worst-case execution time (w).
	WCET vtime.Duration
	// ActualWork, when non-nil, gives the effective execution time of a
	// given activation (≤ WCET for a correct task). The dispatcher uses
	// it to exercise early-termination monitoring; nil means the unit
	// always consumes its full WCET.
	ActualWork func(instance uint64) vtime.Duration
	// Prio is the unit's base priority (prio). Schedulers may override
	// it statically (RM) or dynamically (EDF) via the dispatcher
	// primitive.
	Prio int
	// PT is the preemption threshold; 0 means equal to Prio.
	PT int
	// Earliest is the earliest start time, relative to the task
	// activation instant. The unit may not start before it (§3.1.2).
	Earliest vtime.Duration
	// Latest is the latest allowed start time relative to activation;
	// the dispatcher's monitoring flags a violation beyond it. Zero
	// means unconstrained.
	Latest vtime.Duration
	// Deadline is a unit-level deadline relative to activation, used by
	// monitoring. Zero means the task deadline applies.
	Deadline vtime.Duration
	// Resources are acquired (in the declared order) before the unit
	// starts and released at its end.
	Resources []ResourceReq
	// WaitConds lists condition variables that must all be set before
	// the unit may start.
	WaitConds []string
	// Action is the effect function run at completion (may be nil).
	Action Action
}

// InvEU is a request to execute another task (§3.1). A synchronous
// invocation completes when the invoked task instance completes; an
// asynchronous one completes immediately after triggering the activation.
type InvEU struct {
	// Node is the processor issuing the invocation.
	Node int
	// Target is the name of the task to activate.
	Target string
	// Sync selects synchronous (true) or asynchronous (false) semantics.
	Sync bool
}

// EU is one elementary unit: exactly one of Code / Inv is non-nil.
type EU struct {
	Name string
	Code *CodeEU
	Inv  *InvEU
}

// IsCode reports whether the unit is a Code_EU.
func (e *EU) IsCode() bool { return e.Code != nil }

// NodeOf returns the processor the unit is assigned to.
func (e *EU) NodeOf() int {
	if e.Code != nil {
		return e.Code.Node
	}
	return e.Inv.Node
}

// Edge is a precedence constraint between two units of the same task,
// identified by EU index. Params names the values transferred from the
// source's Out(...) calls to the destination's In(...) reads.
type Edge struct {
	From, To int
	Params   []string
}

// Task is a HEUG: a finite set of elementary units partially ordered by
// precedence constraints, with task-level timing attributes (§3.1.2).
type Task struct {
	Name string
	// Deadline D is relative to the activation request instant.
	Deadline vtime.Duration
	// Arrival is the activation-request law, used by the dispatcher's
	// monitoring (§3.1.2).
	Arrival Arrival
	EUs     []*EU
	Edges   []Edge

	preds, succs [][]int // adjacency by EU index, built by Validate
	validated    bool
}

// Preds returns the indices of eu's precedence predecessors. Valid only
// after Validate.
func (t *Task) Preds(eu int) []int { return t.preds[eu] }

// Succs returns the indices of eu's precedence successors. Valid only
// after Validate.
func (t *Task) Succs(eu int) []int { return t.succs[eu] }

// Validated reports whether Validate succeeded on this task.
func (t *Task) Validated() bool { return t.validated }

// EUIndex returns the index of the named unit, or -1.
func (t *Task) EUIndex(name string) int {
	for i, e := range t.EUs {
		if e.Name == name {
			return i
		}
	}
	return -1
}

// Nodes returns the sorted set of processors the task touches.
func (t *Task) Nodes() []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range t.EUs {
		n := e.NodeOf()
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// IsRemote reports whether the i-th edge crosses processors (a remote
// precedence constraint, which the dispatcher turns into a NetMsg
// invocation).
func (t *Task) IsRemote(edge int) bool {
	e := t.Edges[edge]
	return t.EUs[e.From].NodeOf() != t.EUs[e.To].NodeOf()
}

// TotalWCET sums the WCETs of all Code_EUs: the task's worst-case pure
// computation demand (excluding dispatcher costs).
func (t *Task) TotalWCET() vtime.Duration {
	var sum vtime.Duration
	for _, e := range t.EUs {
		if e.Code != nil {
			sum += e.Code.WCET
		}
	}
	return sum
}
