package heug

import (
	"errors"
	"fmt"
)

// Validation errors.
var (
	// ErrNotDAG is returned when the precedence constraints contain a
	// cycle: a HEUG must be a directed acyclic graph (§3.1).
	ErrNotDAG = errors.New("heug: precedence constraints contain a cycle")
	// ErrEmptyTask is returned for a task with no elementary units.
	ErrEmptyTask = errors.New("heug: task has no elementary units")
)

// Validate checks the structural rules of the task model and builds the
// adjacency indexes used by the dispatcher. It is idempotent.
//
// Checked rules (from §3.1):
//   - the task has at least one EU, and the graph is acyclic;
//   - every Code_EU has a positive WCET (its designer "must guarantee
//     that its worst case execution time can be determined");
//   - ActualWork, if present, is bounded by WCET for a correct unit —
//     this cannot be checked statically, so only WCET > 0 is enforced;
//   - edges reference valid units; no self-loops; no duplicate edges;
//   - resource requests name distinct resources within one unit;
//   - an Inv_EU names a non-empty target task.
func (t *Task) Validate() error {
	if len(t.EUs) == 0 {
		return fmt.Errorf("task %q: %w", t.Name, ErrEmptyTask)
	}
	if t.Deadline < 0 {
		return fmt.Errorf("task %q: negative deadline", t.Name)
	}
	switch t.Arrival.Kind {
	case Periodic, Sporadic:
		if t.Arrival.Period <= 0 {
			return fmt.Errorf("task %q: %s law requires a positive period", t.Name, t.Arrival.Kind)
		}
	case Aperiodic:
		// no constraints
	default:
		return fmt.Errorf("task %q: unknown arrival law", t.Name)
	}

	names := make(map[string]bool, len(t.EUs))
	for i, e := range t.EUs {
		if e.Name == "" {
			return fmt.Errorf("task %q: EU %d has no name", t.Name, i)
		}
		if names[e.Name] {
			return fmt.Errorf("task %q: duplicate EU name %q", t.Name, e.Name)
		}
		names[e.Name] = true
		switch {
		case e.Code != nil && e.Inv != nil:
			return fmt.Errorf("task %q: EU %q is both Code and Inv", t.Name, e.Name)
		case e.Code != nil:
			c := e.Code
			if c.WCET <= 0 {
				return fmt.Errorf("task %q: Code_EU %q must have a positive WCET", t.Name, e.Name)
			}
			if c.Node < 0 {
				return fmt.Errorf("task %q: Code_EU %q has negative node", t.Name, e.Name)
			}
			if c.Prio < 0 {
				return fmt.Errorf("task %q: Code_EU %q has negative priority", t.Name, e.Name)
			}
			if c.PT != 0 && c.PT < c.Prio {
				return fmt.Errorf("task %q: Code_EU %q preemption threshold %d below priority %d", t.Name, e.Name, c.PT, c.Prio)
			}
			if c.Earliest < 0 || c.Latest < 0 || c.Deadline < 0 {
				return fmt.Errorf("task %q: Code_EU %q has negative timing attribute", t.Name, e.Name)
			}
			seen := map[string]bool{}
			for _, r := range c.Resources {
				if r.Resource == "" {
					return fmt.Errorf("task %q: Code_EU %q requests unnamed resource", t.Name, e.Name)
				}
				if r.Mode != Shared && r.Mode != Exclusive {
					return fmt.Errorf("task %q: Code_EU %q resource %q has invalid mode", t.Name, e.Name, r.Resource)
				}
				if seen[r.Resource] {
					return fmt.Errorf("task %q: Code_EU %q requests resource %q twice", t.Name, e.Name, r.Resource)
				}
				seen[r.Resource] = true
			}
		case e.Inv != nil:
			if e.Inv.Target == "" {
				return fmt.Errorf("task %q: Inv_EU %q has no target task", t.Name, e.Name)
			}
			if e.Inv.Target == t.Name {
				return fmt.Errorf("task %q: Inv_EU %q invokes its own task", t.Name, e.Name)
			}
		default:
			return fmt.Errorf("task %q: EU %q is neither Code nor Inv", t.Name, e.Name)
		}
	}

	n := len(t.EUs)
	t.preds = make([][]int, n)
	t.succs = make([][]int, n)
	edgeSeen := make(map[[2]int]bool, len(t.Edges))
	for _, e := range t.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("task %q: edge %d->%d out of range", t.Name, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("task %q: self-loop on EU %q", t.Name, t.EUs[e.From].Name)
		}
		key := [2]int{e.From, e.To}
		if edgeSeen[key] {
			return fmt.Errorf("task %q: duplicate edge %q->%q", t.Name, t.EUs[e.From].Name, t.EUs[e.To].Name)
		}
		edgeSeen[key] = true
		t.succs[e.From] = append(t.succs[e.From], e.To)
		t.preds[e.To] = append(t.preds[e.To], e.From)
	}

	// Kahn's algorithm: the graph must be acyclic.
	indeg := make([]int, n)
	for i := range t.preds {
		indeg[i] = len(t.preds[i])
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	visited := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		visited++
		for _, v := range t.succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if visited != n {
		return fmt.Errorf("task %q: %w", t.Name, ErrNotDAG)
	}
	t.validated = true
	return nil
}

// TopoOrder returns a deterministic topological ordering of the EU
// indices (valid only after Validate).
func (t *Task) TopoOrder() []int {
	n := len(t.EUs)
	indeg := make([]int, n)
	for i := range t.preds {
		indeg[i] = len(t.preds[i])
	}
	var order []int
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range t.succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return order
}
