package heug_test

import (
	"fmt"

	"hades/internal/heug"
	"hades/internal/vtime"
)

// ExampleBuilder assembles a small distributed HEUG: a fork-join graph
// whose branches run on different processors, connected by remote
// precedence constraints carrying parameters.
func ExampleBuilder() {
	us := vtime.Microsecond
	task, err := heug.NewTask("pipeline", heug.SporadicEvery(10*vtime.Millisecond)).
		WithDeadline(8*vtime.Millisecond).
		Code("acquire", heug.CodeEU{Node: 0, WCET: 200 * us}).
		Code("filterA", heug.CodeEU{Node: 1, WCET: 400 * us}).
		Code("filterB", heug.CodeEU{Node: 2, WCET: 300 * us}).
		Code("merge", heug.CodeEU{Node: 0, WCET: 100 * us}).
		Precede("acquire", "filterA", "raw").
		Precede("acquire", "filterB", "raw").
		Precede("filterA", "merge", "a").
		Precede("filterB", "merge", "b").
		Build()
	if err != nil {
		panic(err)
	}
	fmt.Println("EUs:", len(task.EUs))
	fmt.Println("nodes:", task.Nodes())
	fmt.Println("remote edges:", countRemote(task))
	// Output:
	// EUs: 4
	// nodes: [0 1 2]
	// remote edges: 4
}

func countRemote(t *heug.Task) int {
	n := 0
	for i := range t.Edges {
		if t.IsRemote(i) {
			n++
		}
	}
	return n
}

// ExampleSpuriTask_ToHEUG performs the paper's Figure 3 translation.
func ExampleSpuriTask_ToHEUG() {
	ms := vtime.Millisecond
	st := heug.SpuriTask{
		Name:         "tau",
		CBefore:      2 * ms,
		CS:           1 * ms,
		CAfter:       1 * ms,
		Resource:     "S",
		Deadline:     20 * ms,
		PseudoPeriod: 25 * ms,
		Blocking:     3 * ms,
	}
	task, err := st.ToHEUG()
	if err != nil {
		panic(err)
	}
	for _, eu := range task.EUs {
		res := "-"
		if len(eu.Code.Resources) > 0 {
			res = eu.Code.Resources[0].Resource
		}
		fmt.Printf("%s w=%s resource=%s\n", eu.Name, eu.Code.WCET, res)
	}
	// Output:
	// tau.eu1 w=2ms resource=-
	// tau.eu2 w=1ms resource=S
	// tau.eu3 w=1ms resource=-
}
