package heug

import (
	"fmt"

	"hades/internal/vtime"
)

// Builder assembles a Task fluently. All errors are accumulated and
// reported by Build, so call sites stay linear.
//
//	t, err := heug.NewTask("control", heug.PeriodicEvery(10*vtime.Millisecond)).
//		WithDeadline(10*vtime.Millisecond).
//		Code("read", heug.CodeEU{Node: 0, WCET: 200 * vtime.Microsecond}).
//		Code("law", heug.CodeEU{Node: 0, WCET: 800 * vtime.Microsecond}).
//		Precede("read", "law", "sample").
//		Build()
type Builder struct {
	task *Task
	errs []error
}

// NewTask starts building a task with the given name and arrival law.
func NewTask(name string, arrival Arrival) *Builder {
	return &Builder{task: &Task{Name: name, Arrival: arrival}}
}

// WithDeadline sets the task deadline D (relative to activation).
func (b *Builder) WithDeadline(d vtime.Duration) *Builder {
	b.task.Deadline = d
	return b
}

// Code appends a Code_EU under the given unit name.
func (b *Builder) Code(name string, eu CodeEU) *Builder {
	if b.task.EUIndex(name) >= 0 {
		b.errs = append(b.errs, fmt.Errorf("duplicate EU name %q", name))
		return b
	}
	c := eu
	b.task.EUs = append(b.task.EUs, &EU{Name: name, Code: &c})
	return b
}

// Invoke appends an Inv_EU under the given unit name.
func (b *Builder) Invoke(name string, eu InvEU) *Builder {
	if b.task.EUIndex(name) >= 0 {
		b.errs = append(b.errs, fmt.Errorf("duplicate EU name %q", name))
		return b
	}
	c := eu
	b.task.EUs = append(b.task.EUs, &EU{Name: name, Inv: &c})
	return b
}

// Precede adds a precedence constraint from unit `from` to unit `to`,
// transferring the named parameters.
func (b *Builder) Precede(from, to string, params ...string) *Builder {
	fi, ti := b.task.EUIndex(from), b.task.EUIndex(to)
	if fi < 0 {
		b.errs = append(b.errs, fmt.Errorf("precedence source %q not defined", from))
		return b
	}
	if ti < 0 {
		b.errs = append(b.errs, fmt.Errorf("precedence destination %q not defined", to))
		return b
	}
	b.task.Edges = append(b.task.Edges, Edge{From: fi, To: ti, Params: params})
	return b
}

// Chain adds precedence constraints linking each named unit to the next.
func (b *Builder) Chain(names ...string) *Builder {
	for i := 0; i+1 < len(names); i++ {
		b.Precede(names[i], names[i+1])
	}
	return b
}

// Build validates and returns the task.
func (b *Builder) Build() (*Task, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("heug: task %q: %w", b.task.Name, b.errs[0])
	}
	if err := b.task.Validate(); err != nil {
		return nil, err
	}
	return b.task, nil
}

// MustBuild is Build for static task definitions; it panics on error.
func (b *Builder) MustBuild() *Task {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
