package heug

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

func TestBuilderLinearChain(t *testing.T) {
	task, err := NewTask("pipeline", PeriodicEvery(10*ms)).
		WithDeadline(10*ms).
		Code("read", CodeEU{Node: 0, WCET: 100 * us}).
		Code("proc", CodeEU{Node: 0, WCET: 300 * us}).
		Code("write", CodeEU{Node: 0, WCET: 50 * us}).
		Chain("read", "proc", "write").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(task.EUs) != 3 || len(task.Edges) != 2 {
		t.Fatalf("EUs=%d edges=%d", len(task.EUs), len(task.Edges))
	}
	if got := task.TotalWCET(); got != 450*us {
		t.Fatalf("TotalWCET = %s, want 450us", got)
	}
	if len(task.Preds(0)) != 0 || len(task.Preds(1)) != 1 || len(task.Succs(1)) != 1 {
		t.Fatal("adjacency wrong")
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*Task, error)
		match string
	}{
		{
			"duplicate EU",
			func() (*Task, error) {
				return NewTask("x", AperiodicLaw()).
					Code("a", CodeEU{WCET: us}).
					Code("a", CodeEU{WCET: us}).Build()
			},
			"duplicate EU",
		},
		{
			"unknown precedence source",
			func() (*Task, error) {
				return NewTask("x", AperiodicLaw()).
					Code("a", CodeEU{WCET: us}).
					Precede("nope", "a").Build()
			},
			"not defined",
		},
		{
			"zero WCET",
			func() (*Task, error) {
				return NewTask("x", AperiodicLaw()).
					Code("a", CodeEU{WCET: 0}).Build()
			},
			"positive WCET",
		},
		{
			"empty task",
			func() (*Task, error) {
				return NewTask("x", AperiodicLaw()).Build()
			},
			"no elementary units",
		},
		{
			"periodic without period",
			func() (*Task, error) {
				return NewTask("x", Arrival{Kind: Periodic}).
					Code("a", CodeEU{WCET: us}).Build()
			},
			"positive period",
		},
		{
			"pt below prio",
			func() (*Task, error) {
				return NewTask("x", AperiodicLaw()).
					Code("a", CodeEU{WCET: us, Prio: 10, PT: 5}).Build()
			},
			"preemption threshold",
		},
		{
			"duplicate resource request",
			func() (*Task, error) {
				return NewTask("x", AperiodicLaw()).
					Code("a", CodeEU{WCET: us, Resources: []ResourceReq{
						{Resource: "r", Mode: Exclusive},
						{Resource: "r", Mode: Shared},
					}}).Build()
			},
			"twice",
		},
		{
			"self invocation",
			func() (*Task, error) {
				return NewTask("x", AperiodicLaw()).
					Invoke("i", InvEU{Target: "x"}).Build()
			},
			"its own task",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.build()
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.match) {
				t.Fatalf("error %q does not contain %q", err, tt.match)
			}
		})
	}
}

func TestCycleDetection(t *testing.T) {
	_, err := NewTask("cyc", AperiodicLaw()).
		Code("a", CodeEU{WCET: us}).
		Code("b", CodeEU{WCET: us}).
		Code("c", CodeEU{WCET: us}).
		Precede("a", "b").
		Precede("b", "c").
		Precede("c", "a").
		Build()
	if !errors.Is(err, ErrNotDAG) {
		t.Fatalf("err = %v, want ErrNotDAG", err)
	}
}

func TestSelfLoopRejected(t *testing.T) {
	task := &Task{
		Name:    "x",
		Arrival: AperiodicLaw(),
		EUs:     []*EU{{Name: "a", Code: &CodeEU{WCET: us}}},
		Edges:   []Edge{{From: 0, To: 0}},
	}
	if err := task.Validate(); err == nil || !strings.Contains(err.Error(), "self-loop") {
		t.Fatalf("err = %v, want self-loop", err)
	}
}

func TestRemoteEdgeDetection(t *testing.T) {
	task := NewTask("dist", AperiodicLaw()).
		Code("a", CodeEU{Node: 0, WCET: us}).
		Code("b", CodeEU{Node: 1, WCET: us}).
		Code("c", CodeEU{Node: 1, WCET: us}).
		Precede("a", "b", "x").
		Precede("b", "c").
		MustBuild()
	if !task.IsRemote(0) {
		t.Error("a->b crosses nodes: should be remote")
	}
	if task.IsRemote(1) {
		t.Error("b->c is node-local")
	}
	nodes := task.Nodes()
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 1 {
		t.Fatalf("Nodes() = %v", nodes)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	task := NewTask("diamond", AperiodicLaw()).
		Code("src", CodeEU{WCET: us}).
		Code("l", CodeEU{WCET: us}).
		Code("r", CodeEU{WCET: us}).
		Code("sink", CodeEU{WCET: us}).
		Precede("src", "l").
		Precede("src", "r").
		Precede("l", "sink").
		Precede("r", "sink").
		MustBuild()
	order := task.TopoOrder()
	pos := map[int]int{}
	for i, idx := range order {
		pos[idx] = i
	}
	for _, e := range task.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("topo order %v violates edge %d->%d", order, e.From, e.To)
		}
	}
}

// Property: random DAGs (edges only forward) always validate, and the
// topological order contains every EU exactly once.
func TestRandomDAGValidation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%12)
		b := NewTask("rand", AperiodicLaw())
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = "eu" + string(rune('A'+i))
			b.Code(names[i], CodeEU{WCET: vtime.Duration(1+rng.Intn(1000)) * us})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					b.Precede(names[i], names[j])
				}
			}
		}
		task, err := b.Build()
		if err != nil {
			return false
		}
		order := task.TopoOrder()
		if len(order) != n {
			return false
		}
		seen := map[int]bool{}
		for _, i := range order {
			if seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpuriTranslationFigure3(t *testing.T) {
	st := SpuriTask{
		Name:         "tau",
		Node:         2,
		CBefore:      100 * us,
		CS:           50 * us,
		CAfter:       70 * us,
		Resource:     "S",
		Deadline:     5 * ms,
		PseudoPeriod: 10 * ms,
		Blocking:     200 * us,
	}
	task, err := st.ToHEUG()
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3 shape: three chained Code_EUs.
	if len(task.EUs) != 3 {
		t.Fatalf("EUs = %d, want 3", len(task.EUs))
	}
	if len(task.Edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(task.Edges))
	}
	eu1, eu2, eu3 := task.EUs[0].Code, task.EUs[1].Code, task.EUs[2].Code
	if eu1.WCET != 100*us || eu2.WCET != 50*us || eu3.WCET != 70*us {
		t.Fatal("WCET split wrong")
	}
	// eu2 holds S exclusively.
	if len(eu2.Resources) != 1 || eu2.Resources[0].Resource != "S" || eu2.Resources[0].Mode != Exclusive {
		t.Fatalf("eu2 resources = %+v", eu2.Resources)
	}
	if len(eu1.Resources) != 0 || len(eu3.Resources) != 0 {
		t.Fatal("eu1/eu3 must not hold resources")
	}
	// latest = B'_i on the first unit; D = D_i on the task.
	if eu1.Latest != 200*us {
		t.Fatalf("eu1.Latest = %s, want 200us", eu1.Latest)
	}
	if task.Deadline != 5*ms {
		t.Fatalf("task deadline = %s", task.Deadline)
	}
	if task.Arrival.Kind != Sporadic || task.Arrival.Period != 10*ms {
		t.Fatalf("arrival = %+v", task.Arrival)
	}
	// All on the same node.
	for _, e := range task.EUs {
		if e.Code.Node != 2 {
			t.Fatal("node placement lost")
		}
	}
}

func TestSpuriTranslationNoResource(t *testing.T) {
	st := SpuriTask{Name: "plain", CBefore: 500 * us, Deadline: ms, PseudoPeriod: 2 * ms}
	task, err := st.ToHEUG()
	if err != nil {
		t.Fatal(err)
	}
	if len(task.EUs) != 1 || len(task.Edges) != 0 {
		t.Fatalf("plain task: EUs=%d edges=%d, want 1/0", len(task.EUs), len(task.Edges))
	}
}

func TestSpuriTranslationErrors(t *testing.T) {
	if _, err := (SpuriTask{Name: "bad"}).ToHEUG(); err == nil {
		t.Error("zero computation accepted")
	}
	if _, err := (SpuriTask{Name: "bad", CS: us, Deadline: ms, PseudoPeriod: ms}).ToHEUG(); err == nil {
		t.Error("critical section without resource accepted")
	}
	if _, err := (SpuriTask{Name: "bad", CBefore: us, Resource: "S", Deadline: ms, PseudoPeriod: ms}).ToHEUG(); err == nil {
		t.Error("resource without critical section accepted")
	}
}

// Property: the Figure 3 translation preserves total WCET and always
// yields a valid chain.
func TestSpuriTranslationPreservesWCET(t *testing.T) {
	f := func(b, cs, a uint16) bool {
		st := SpuriTask{
			Name:         "q",
			CBefore:      vtime.Duration(b) * us,
			CS:           vtime.Duration(cs) * us,
			CAfter:       vtime.Duration(a) * us,
			Deadline:     vtime.Duration(b+cs+a+1000) * us,
			PseudoPeriod: vtime.Duration(b+cs+a+2000) * us,
		}
		if st.CS > 0 {
			st.Resource = "S"
		}
		task, err := st.ToHEUG()
		if st.C() == 0 {
			return err != nil
		}
		if err != nil {
			return false
		}
		return task.TotalWCET() == st.C()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArrivalConstructors(t *testing.T) {
	if PeriodicEvery(ms).Kind != Periodic {
		t.Error("PeriodicEvery kind")
	}
	if SporadicEvery(ms).Kind != Sporadic {
		t.Error("SporadicEvery kind")
	}
	if AperiodicLaw().Kind != Aperiodic {
		t.Error("AperiodicLaw kind")
	}
	for _, k := range []ArrivalKind{Periodic, Sporadic, Aperiodic} {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
