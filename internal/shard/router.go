package shard

import (
	"fmt"

	"hades/internal/membership"
	"hades/internal/monitor"
	"hades/internal/simkern"
)

// Router owns the key → shard → primary resolution: a consistent-hash
// ring over the shard groups, optional pinned per-key routes, and a
// view-driven ownership table. Whenever a shard's membership installs
// a view that changes its live set, the router republishes that
// shard's ownership (the new primary per the replication layer's
// sticky promotion rule) and notifies subscribers, so clients redirect
// their in-flight requests instead of waiting out a timeout.
type Router struct {
	eng    *simkern.Engine
	ring   *Ring
	groups []*Group
	routes map[string]int
	subs   []func(*Group)

	// Republishes counts ownership republications (one per view change
	// on any shard).
	Republishes int
}

// NewRouter builds a router over index-aligned shard groups. routes
// pins keys to shard indices, bypassing the ring (explicit placement);
// a route to an undeclared shard is a configuration error.
func NewRouter(eng *simkern.Engine, ring *Ring, groups []*Group, routes map[string]int) (*Router, error) {
	if ring.Shards() != len(groups) {
		return nil, fmt.Errorf("shard: ring has %d shards but %d groups given", ring.Shards(), len(groups))
	}
	for key, idx := range routes {
		if idx < 0 || idx >= len(groups) {
			return nil, fmt.Errorf("shard: key %q routed to undeclared group %d (have %d)", key, idx, len(groups))
		}
	}
	r := &Router{eng: eng, ring: ring, groups: groups}
	if len(routes) > 0 {
		r.routes = make(map[string]int, len(routes))
		for k, v := range routes {
			r.routes[k] = v
		}
	}
	for i, g := range groups {
		idx := i
		g.Membership().OnChange(func(v membership.View) { r.republish(idx, v) })
	}
	return r, nil
}

// republish reacts to one installed view on one shard: ownership may
// have moved (the replication layer already performed its sticky
// promotion at this same instant), so subscribers re-resolve.
func (r *Router) republish(idx int, v membership.View) {
	g := r.groups[idx]
	r.Republishes++
	if log := r.eng.Log(); log != nil {
		log.Recordf(r.eng.Now(), monitor.KindRepublish, g.Replication().Primary(), g.Name(), "%s primary=n%d", v, g.Replication().Primary())
	}
	for _, fn := range r.subs {
		fn(g)
	}
}

// OnRepublish registers a handler fired whenever a shard's ownership
// is republished (clients redirect in-flight requests from it).
func (r *Router) OnRepublish(fn func(*Group)) { r.subs = append(r.subs, fn) }

// Ring returns the router's consistent-hash ring.
func (r *Router) Ring() *Ring { return r.ring }

// Groups returns the shard groups, ring-index order.
func (r *Router) Groups() []*Group { return append([]*Group(nil), r.groups...) }

// group returns one shard group without copying the slice (the client
// dispatch hot path).
func (r *Router) group(i int) *Group { return r.groups[i] }

// ShardFor resolves the shard index owning key: a pinned route if one
// exists, the ring otherwise.
func (r *Router) ShardFor(key string) int {
	if idx, ok := r.routes[key]; ok {
		return idx
	}
	return r.ring.Shard(key)
}

// GroupFor resolves the shard group owning key.
func (r *Router) GroupFor(key string) *Group { return r.groups[r.ShardFor(key)] }

// PrimaryFor resolves the node a request for key should be sent to
// right now: the owning group's current primary.
func (r *Router) PrimaryFor(key string) (int, *Group) {
	g := r.GroupFor(key)
	return g.Replication().Primary(), g
}
