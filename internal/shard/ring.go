// Package shard is the sharded data plane of the reproduction: it maps
// a keyspace onto N replication groups through a deterministic
// consistent-hash ring and gives clients a request layer that follows
// the ring to the owning group's current primary, transparently
// retrying and redirecting across crash failover, stale-view rejection
// and network-partition windows.
//
// The layering mirrors how partitioned replicated services are built
// over view-synchronous groups: each shard is one membership group
// carrying one replicated state machine (internal/replication over
// internal/membership), the Router republishes shard ownership
// whenever a group installs a view that changes its live set, and the
// Client resolves key → shard → primary per attempt, so an in-flight
// request redirects as soon as a failover view installs.
//
// Delivery contract: tagged requests are exactly-once as far as the
// surviving state lineage reaches — the replication layer's replicated
// dedup table answers retried requests from cache instead of applying
// them twice, and the per-replica apply logs let a harness assert
// per-key linearizability (Verify). A primary stranded on a minority
// side stops serving once its detector reveals it cannot reach a
// majority (membership.HasQuorum — the stale-view rejection); inside
// the detection window it can still acknowledge requests the merge
// will overwrite, which is why harness scenarios keep clients on the
// majority side of a split (the classic fencing caveat).
//
// Everything is a deterministic function of the cluster description
// and the seed, like the rest of the runtime.
package shard

import (
	"fmt"
	"sort"
)

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashKey hashes a key to its ring position (FNV-1a finished with a
// splitmix64 avalanche — plain FNV clusters badly on short, similar
// labels): stable across runs, platforms and Go versions, so key →
// shard routing is part of the determinism contract.
func hashKey(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// point is one virtual node on the ring.
type point struct {
	h     uint64
	shard int
}

// Ring is a deterministic consistent-hash ring over a fixed number of
// shards. Each shard owns VNodes points; a key belongs to the shard of
// the first point at or after its hash (wrapping). Consistent hashing
// keeps most keys in place when the shard count changes — the property
// future resharding rides on.
type Ring struct {
	points []point
	shards int
}

// DefaultVNodes is the virtual-node count per shard when unspecified:
// enough to spread small keyspaces acceptably while keeping lookup
// tables tiny.
const DefaultVNodes = 16

// NewRing builds a ring over the given shard count. vnodes <= 0
// selects DefaultVNodes.
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		panic(fmt.Sprintf("shard: ring needs at least 1 shard (got %d)", shards))
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{shards: shards}
	r.points = make([]point, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{h: hashKey(fmt.Sprintf("shard-%d/vnode-%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the number of shards on the ring.
func (r *Ring) Shards() int { return r.shards }

// Shard returns the shard owning key.
func (r *Ring) Shard(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0 // wrap past the last point
	}
	return r.points[i].shard
}
