package shard

import (
	"fmt"
	"testing"
)

// TestRingDeterministicAndTotal: the ring is a pure function of its
// parameters — two identically-built rings route every key the same
// way, and every key lands on a valid shard.
func TestRingDeterministicAndTotal(t *testing.T) {
	a := NewRing(4, 16)
	b := NewRing(4, 16)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		sa, sb := a.Shard(key), b.Shard(key)
		if sa != sb {
			t.Fatalf("key %q routes to %d and %d on identical rings", key, sa, sb)
		}
		if sa < 0 || sa >= 4 {
			t.Fatalf("key %q routed to invalid shard %d", key, sa)
		}
	}
}

// TestRingBalance: with enough keys every shard owns a non-trivial
// slice of the keyspace (no empty shard, no shard over half).
func TestRingBalance(t *testing.T) {
	r := NewRing(4, 32)
	counts := make([]int, 4)
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Shard(fmt.Sprintf("key-%d", i))]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d owns no keys: %v", s, counts)
		}
		if c > n/2 {
			t.Fatalf("shard %d owns %d of %d keys (unbalanced): %v", s, c, n, counts)
		}
	}
}

// TestRingConsistency: growing the ring by one shard moves only a
// bounded fraction of the keyspace — the consistent-hashing property
// resharding relies on (ideally 1/(n+1); assert well under a naive
// mod-hash's (n)/(n+1)).
func TestRingConsistency(t *testing.T) {
	old := NewRing(4, 32)
	grown := NewRing(5, 32)
	const n = 4000
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		if old.Shard(key) != grown.Shard(key) {
			moved++
		}
	}
	if frac := float64(moved) / n; frac > 0.45 {
		t.Fatalf("growing 4→5 shards moved %.0f%% of keys, want a bounded fraction", frac*100)
	}
}

// TestRingZeroShardsPanics: a ring over zero shards is a configuration
// error, loudly.
func TestRingZeroShardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0, ...) did not panic")
		}
	}()
	NewRing(0, 8)
}

// BenchmarkRingShard measures the per-request routing cost — it sits
// on the client hot path of every keyed submission.
func BenchmarkRingShard(b *testing.B) {
	r := NewRing(16, 32)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Shard(keys[i%len(keys)])
	}
}
