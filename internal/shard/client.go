package shard

import (
	"fmt"

	"hades/internal/eventq"
	"hades/internal/membership"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// Policy selects what a client does with a request that exhausted its
// retries (a partition window, an unreachable shard).
type Policy uint8

const (
	// QueueOnFailure parks the request and resubmits it when ownership
	// can have changed — a new agreed view (failover, merge) or a
	// partition heal. Requests issued into a split window are not
	// lost: they land after the merge, applied exactly once.
	QueueOnFailure Policy = iota
	// FailFast reports the request failed instead of parking it.
	FailFast
)

// String returns the policy name.
func (p Policy) String() string {
	if p == FailFast {
		return "fail-fast"
	}
	return "queue"
}

// Default client parameters: the retry timeout comfortably covers one
// request round trip (two link crossings, the receive paths and the
// execution cost), and the retry budget spans one uncontended
// view-change bound, so a plain crash failover is ridden out by
// retries alone and only genuine partition windows park requests.
const (
	DefaultRetryTimeout = 5 * vtime.Millisecond
	DefaultMaxRetries   = 8
)

// ClientParams parameterises one client.
type ClientParams struct {
	// Node is the client's processor (one client per node and per
	// data plane).
	Node int
	// RespPort is the port responses arrive on; it must match the
	// shard groups' response port (empty selects the shared default).
	RespPort string
	// RetryTimeout is the per-attempt reply timeout (0 selects
	// DefaultRetryTimeout).
	RetryTimeout vtime.Duration
	// MaxRetries bounds consecutive timeouts before the policy applies
	// (0 selects DefaultMaxRetries).
	MaxRetries int
	// Policy selects queueing or failing fast on exhaustion.
	Policy Policy
}

// ClientStats counts one client's request outcomes.
type ClientStats struct {
	Submitted   int
	Acked       int
	Redirects   int // redirect responses + router-republish redirects
	Timeouts    int // reply timeouts observed
	Retries     int // re-dispatches after a timeout
	Blocked     int // stale-view rejections received
	Queued      int // park events (queue policy)
	Resubmitted int // dispatches of parked requests after a view/heal
	FailedFast  int // requests abandoned by the fail-fast policy
	SumLatency  vtime.Duration
	MaxLatency  vtime.Duration
}

// AvgLatency returns the mean submit-to-ack latency (queue time
// included).
func (s ClientStats) AvgLatency() vtime.Duration {
	if s.Acked == 0 {
		return 0
	}
	return s.SumLatency / vtime.Duration(s.Acked)
}

// Ack records one acknowledged request.
type Ack struct {
	Key     string
	Seq     uint64
	Cmd     int64
	Result  int64
	At      vtime.Time
	Latency vtime.Duration
}

// reqState tracks one request through the client.
type reqState uint8

const (
	// stWaiting: an earlier request on the same key is still
	// outstanding; this one holds its turn (per-key FIFO — without it,
	// independent retry schedules could apply two writes to one key in
	// the wrong order across a failover).
	stWaiting reqState = iota + 1
	stInflight
	stParked
	stAcked
	stFailed
)

// request is one keyed request owned by the client.
type request struct {
	key         string
	cmd         int64
	seq         uint64
	shard       int
	target      int
	submittedAt vtime.Time
	state       reqState
	attempt     int // bumping invalidates the armed timeout
	retries     int
}

// Client is the session layer of the sharded data plane: it submits
// keyed requests, follows the ring to the owning group's current
// primary, and transparently retries and redirects across crash
// failover, stale-view rejection and partition windows.
type Client struct {
	eng    *simkern.Engine
	net    *netsim.Network
	router *Router
	p      ClientParams

	seq    uint64
	reqs   map[uint64]*request
	order  []uint64
	perKey map[string][]*request // unfinished requests per key, FIFO

	// Stats counts outcomes; Acks and Failed record them for the
	// harness (Verify checks Acks against the shard apply logs).
	Stats  ClientStats
	Acks   []Ack
	Failed []uint64
}

// NewClient builds a client on params.Node and wires its reactive
// paths: server responses, router republications (in-flight requests
// redirect), and the resubmission triggers for parked requests (any
// new agreed view on any shard, and partition heals).
func NewClient(eng *simkern.Engine, net *netsim.Network, router *Router, params ClientParams) *Client {
	if params.RespPort == "" {
		params.RespPort = respPort
	}
	if params.RetryTimeout <= 0 {
		params.RetryTimeout = DefaultRetryTimeout
	}
	if params.MaxRetries <= 0 {
		params.MaxRetries = DefaultMaxRetries
	}
	c := &Client{eng: eng, net: net, router: router, p: params,
		reqs: make(map[uint64]*request), perKey: make(map[string][]*request)}
	net.Bind(params.Node, params.RespPort, c.handleResp)
	router.OnRepublish(c.redirectInflight)
	for _, g := range router.Groups() {
		g.Membership().OnChange(func(membership.View) { c.flushParked("view") })
	}
	net.OnPartitionChange(func(partitioned bool) {
		if !partitioned {
			c.flushParked("heal")
		}
	})
	return c
}

// Node returns the client's processor.
func (c *Client) Node() int { return c.p.Node }

// Params returns the client's effective parameters.
func (c *Client) Params() ClientParams { return c.p }

// Submit issues one keyed request and returns its sequence number. The
// command is applied exactly once on the owning shard regardless of
// how many retries, redirects or resubmissions it takes to land.
// Requests on the same key are a session: they apply in submission
// order (per-key FIFO — a later request waits for the earlier one's
// outcome), while distinct keys proceed in parallel.
func (c *Client) Submit(key string, cmd int64) uint64 {
	c.seq++
	r := &request{
		key:         key,
		cmd:         cmd,
		seq:         c.seq,
		shard:       c.router.ShardFor(key),
		submittedAt: c.eng.Now(),
	}
	c.reqs[r.seq] = r
	c.order = append(c.order, r.seq)
	c.Stats.Submitted++
	q := c.perKey[key]
	c.perKey[key] = append(q, r)
	if len(q) > 0 {
		r.state = stWaiting // an earlier request on key holds the turn
		return r.seq
	}
	c.dispatch(r)
	return r.seq
}

// finish retires the head request of its key's session (acked or
// abandoned) and hands the turn to the next waiting request.
func (c *Client) finish(r *request) {
	q := c.perKey[r.key]
	if len(q) == 0 || q[0] != r {
		return
	}
	q = q[1:]
	if len(q) == 0 {
		delete(c.perKey, r.key)
		return
	}
	c.perKey[r.key] = q
	c.dispatch(q[0])
}

// dispatch sends (or resends) one attempt at the owning group's
// current primary and arms the reply timeout.
func (c *Client) dispatch(r *request) {
	r.state = stInflight
	r.attempt++
	g := c.router.group(r.shard)
	r.target = g.Replication().Primary()
	_, _ = c.net.Send(c.p.Node, r.target, g.ReqPort(),
		reqEnv{Key: r.key, Cmd: r.cmd, Client: c.p.Node, Seq: r.seq, Attempt: r.attempt}, 48)
	attempt := r.attempt
	c.eng.After(c.p.RetryTimeout, eventq.ClassApp, func() {
		if r.state != stInflight || r.attempt != attempt {
			return // answered or re-dispatched in the meantime
		}
		c.Stats.Timeouts++
		c.onFailure(r, "timeout")
	})
}

// onFailure handles one failed attempt (timeout or stale-view
// rejection): retry while budget remains, then apply the policy.
func (c *Client) onFailure(r *request, why string) {
	r.retries++
	if r.retries <= c.p.MaxRetries {
		c.Stats.Retries++
		if log := c.eng.Log(); log != nil {
			log.Recordf(c.eng.Now(), monitor.KindRetry, c.p.Node, reqLabel(r), "%s retry %d/%d", why, r.retries, c.p.MaxRetries)
		}
		c.dispatch(r)
		return
	}
	if c.p.Policy == FailFast {
		r.state = stFailed
		r.attempt++
		c.Stats.FailedFast++
		c.Failed = append(c.Failed, r.seq)
		c.finish(r)
		return
	}
	r.state = stParked
	r.attempt++
	c.Stats.Queued++
	if log := c.eng.Log(); log != nil {
		log.Recordf(c.eng.Now(), monitor.KindRetry, c.p.Node, reqLabel(r), "%s: parked after %d retries", why, r.retries)
	}
	// Backoff safety net: view installs and heals resubmit parked
	// requests promptly, but a request can park after the last such
	// trigger (its retry budget outlasting the merge) — re-probe at a
	// deep backoff so nothing is stranded.
	attempt := r.attempt
	c.eng.After(5*c.p.RetryTimeout, eventq.ClassApp, func() {
		if r.state != stParked || r.attempt != attempt {
			return
		}
		c.resubmit(r, "backoff")
	})
}

// resubmit re-dispatches one parked request with a fresh retry budget.
func (c *Client) resubmit(r *request, why string) {
	c.Stats.Resubmitted++
	r.retries = 0
	if log := c.eng.Log(); log != nil {
		log.Recordf(c.eng.Now(), monitor.KindResubmit, c.p.Node, reqLabel(r), "after %s", why)
	}
	c.dispatch(r)
}

// sweepLive iterates the outstanding requests in submission order,
// compacting retired (acked/failed) entries out of c.order on the way
// — the scan fires on every view change, republish and heal, so it
// must stay proportional to the live set, not the run's history.
func (c *Client) sweepLive(fn func(*request)) {
	live := c.order[:0]
	for _, seq := range c.order {
		r := c.reqs[seq]
		if r.state == stAcked || r.state == stFailed {
			continue
		}
		live = append(live, seq)
		fn(r)
	}
	c.order = live
}

// redirectInflight re-resolves in-flight requests of a republished
// shard: when the new primary differs from the attempt's target the
// request redirects immediately instead of waiting out its timeout.
func (c *Client) redirectInflight(g *Group) {
	p := g.Replication().Primary()
	c.sweepLive(func(r *request) {
		if r.state != stInflight || r.shard != g.Index() || r.target == p {
			return
		}
		c.Stats.Redirects++
		if log := c.eng.Log(); log != nil {
			log.Recordf(c.eng.Now(), monitor.KindRedirect, c.p.Node, reqLabel(r), "republish: n%d -> n%d", r.target, p)
		}
		c.dispatch(r)
	})
}

// flushParked resubmits every parked request — fired on any new agreed
// view (failover or merge) and on partition heals, so requests issued
// into a split window land after the merge.
func (c *Client) flushParked(why string) {
	c.sweepLive(func(r *request) {
		if r.state == stParked {
			c.resubmit(r, why)
		}
	})
}

// handleResp consumes one server response.
func (c *Client) handleResp(m *netsim.Message) {
	env, ok := m.Payload.(respEnv)
	if !ok {
		return
	}
	r := c.reqs[env.Seq]
	if r == nil || r.state == stAcked || r.state == stFailed {
		return // late duplicate of an answered request
	}
	switch env.Kind {
	case respOK:
		if r.state == stWaiting {
			return // cannot happen: waiting requests were never sent
		}
		r.state = stAcked
		r.attempt++
		now := c.eng.Now()
		lat := now.Sub(r.submittedAt)
		c.Stats.Acked++
		c.Stats.SumLatency += lat
		if lat > c.Stats.MaxLatency {
			c.Stats.MaxLatency = lat
		}
		c.Acks = append(c.Acks, Ack{Key: r.key, Seq: r.seq, Cmd: r.cmd, Result: env.Result, At: now, Latency: lat})
		c.finish(r)
	case respRedirect:
		if r.state != stInflight || env.Attempt != r.attempt {
			return // a superseded attempt's verdict; the live one decides
		}
		c.Stats.Redirects++
		if log := c.eng.Log(); log != nil {
			log.Recordf(c.eng.Now(), monitor.KindRedirect, c.p.Node, reqLabel(r), "server: n%d -> n%d", r.target, env.Primary)
		}
		c.dispatch(r)
	case respBlocked:
		if r.state != stInflight || env.Attempt != r.attempt {
			return // a superseded attempt's verdict; the live one decides
		}
		c.Stats.Blocked++
		c.onFailure(r, "blocked")
	}
}

// reqLabel renders a request for the monitor log.
func reqLabel(r *request) string { return fmt.Sprintf("shard.%s#%d", r.key, r.seq) }
