package shard

import (
	"fmt"

	"hades/internal/metrics"
	"hades/internal/netsim"
	"hades/internal/session"
	"hades/internal/simkern"
	"hades/internal/trace"
	"hades/internal/vtime"
)

// Policy selects what a client does with a request that exhausted its
// retries (a partition window, an unreachable shard).
type Policy uint8

const (
	// QueueOnFailure parks the request and resubmits it when ownership
	// can have changed — a new agreed view (failover, merge) or a
	// partition heal. Requests issued into a split window are not
	// lost: they land after the merge, applied exactly once.
	QueueOnFailure Policy = iota
	// FailFast reports the request failed instead of parking it.
	FailFast
)

// String returns the policy name.
func (p Policy) String() string {
	if p == FailFast {
		return "fail-fast"
	}
	return "queue"
}

// Default client parameters: the retry timeout comfortably covers one
// request round trip (two link crossings, the receive paths and the
// execution cost), and the retry budget spans one uncontended
// view-change bound, so a plain crash failover is ridden out by
// retries alone and only genuine partition windows park requests.
const (
	DefaultRetryTimeout = 5 * vtime.Millisecond
	DefaultMaxRetries   = 8
)

// ClientParams parameterises one client.
type ClientParams struct {
	// Node is the client's processor (one client per node and per
	// data plane).
	Node int
	// RespPort is the port responses arrive on; it must match the
	// shard groups' response port (empty selects the shared default).
	RespPort string
	// RetryTimeout is the per-attempt reply timeout (0 selects
	// DefaultRetryTimeout).
	RetryTimeout vtime.Duration
	// MaxRetries bounds consecutive timeouts before the policy applies
	// (0 selects DefaultMaxRetries).
	MaxRetries int
	// Policy selects queueing or failing fast on exhaustion.
	Policy Policy
	// Session sets the throughput knobs: op batching per shard and
	// pipelined in-flight batches. The zero value is the unbatched,
	// unpipelined discipline.
	Session session.Params
}

// ClientStats counts one client's request outcomes. The retry-shaped
// counters (Timeouts, Retries, Queued, Resubmitted, Blocked,
// Redirects) count batch-level events — with batching off every batch
// is one op and they coincide with per-op counts.
type ClientStats struct {
	Submitted   int
	Acked       int
	Redirects   int // redirect responses + router-republish redirects
	Timeouts    int // reply timeouts observed
	Retries     int // re-dispatches after a timeout
	Blocked     int // stale-view rejections received
	Queued      int // park events (queue policy)
	Resubmitted int // dispatches of parked batches after a view/heal
	FailedFast  int // requests abandoned by the fail-fast policy
	SumLatency  vtime.Duration
	MaxLatency  vtime.Duration
}

// AvgLatency returns the mean submit-to-ack latency (queue and
// batching wait included).
func (s ClientStats) AvgLatency() vtime.Duration {
	if s.Acked == 0 {
		return 0
	}
	return s.SumLatency / vtime.Duration(s.Acked)
}

// Ack records one acknowledged request.
type Ack struct {
	Key     string
	Seq     uint64
	Cmd     int64
	Result  int64
	At      vtime.Time
	Latency vtime.Duration
}

// reqState tracks one request through the client.
type reqState uint8

const (
	// stWaiting: an earlier request on the same key is still
	// outstanding; this one holds its turn (per-key FIFO — without it,
	// independent retry schedules could apply two writes to one key in
	// the wrong order across a failover).
	stWaiting reqState = iota + 1
	// stBatching: head of its key's session, accumulating in the
	// batcher until its batch flushes.
	stBatching
	stInflight
	stAcked
	stFailed
)

// request is one keyed request owned by the client.
type request struct {
	key         string
	cmd         int64
	seq         uint64
	shard       int
	submittedAt vtime.Time
	state       reqState

	// trace is the request's causal trace; the spans mark its layer
	// transitions (per-key queue → batcher → wire) on the client side,
	// with the server opening the replication span on the same trace.
	trace *trace.Trace
	qspan trace.SpanRef // per-key FIFO wait
	bspan trace.SpanRef // batcher coalescing + pipeline wait
	wspan trace.SpanRef // session call in flight (retries included)
}

// batch is one emitted batched submission: its ops, its session call
// (the retry discipline), and the target its live attempt was sent to.
type batch struct {
	id     uint64
	shard  int
	ops    []*request
	call   *session.Call
	target int
	done   bool
}

// Client is the session layer of the sharded data plane: it submits
// keyed requests, coalesces ops bound for the same shard into batched
// submissions (pipelined up to the configured depth), follows the ring
// to the owning group's current primary, and transparently retries and
// redirects across crash failover, stale-view rejection and partition
// windows — the retry discipline itself lives in internal/session.
type Client struct {
	eng    *simkern.Engine
	net    *netsim.Network
	router *Router
	p      ClientParams
	sess   *session.Engine

	seq     uint64
	reqs    map[uint64]*request
	perKey  map[string][]*request // unfinished requests per key, FIFO
	batcher *session.Batcher[*request]
	nextBat uint64
	batches map[uint64]*batch
	order   []uint64 // live batch ids, emission order

	// Stats counts outcomes; Acks and Failed record them for the
	// harness (Verify checks Acks against the shard apply logs).
	Stats  ClientStats
	Acks   []Ack
	Failed []uint64

	// onAck, when set, observes every acknowledged request as it lands
	// — the load plane's closed-loop sessions hang their think-time
	// continuation off it.
	onAck func(Ack)

	// mAck is the per-interval ack-latency histogram (nil-safe when
	// the metrics plane is off).
	mAck *metrics.Hist
}

// NewClient builds a client on params.Node and wires its reactive
// paths: server responses, router republications (in-flight batches
// redirect), and the resubmission triggers for parked batches (any
// new agreed view on any shard, and partition heals).
func NewClient(eng *simkern.Engine, net *netsim.Network, router *Router, params ClientParams) *Client {
	if params.RespPort == "" {
		params.RespPort = respPort
	}
	if params.RetryTimeout <= 0 {
		params.RetryTimeout = DefaultRetryTimeout
	}
	if params.MaxRetries <= 0 {
		params.MaxRetries = DefaultMaxRetries
	}
	c := &Client{eng: eng, net: net, router: router, p: params,
		sess:    session.New(eng),
		reqs:    make(map[uint64]*request),
		perKey:  make(map[string][]*request),
		batches: make(map[uint64]*batch),
		mAck:    eng.Metrics().Hist("kv.ack.latency"),
	}
	c.batcher = session.NewBatcher[*request](eng, params.Session,
		fmt.Sprintf("shard.client@n%d", params.Node), params.Node, c.launch)
	net.Bind(params.Node, params.RespPort, c.handleResp)
	router.OnRepublish(c.redirectInflight)
	for _, g := range router.Groups() {
		c.sess.WireViews(g.Membership())
	}
	c.sess.WireHeals(net)
	return c
}

// Node returns the client's processor.
func (c *Client) Node() int { return c.p.Node }

// SetOnAck registers a callback invoked for every acknowledged
// request, after the client's own bookkeeping. Callbacks chain: a
// second registration runs after the first.
func (c *Client) SetOnAck(fn func(Ack)) {
	if fn == nil {
		return
	}
	prev := c.onAck
	if prev == nil {
		c.onAck = fn
		return
	}
	c.onAck = func(a Ack) {
		prev(a)
		fn(a)
	}
}

// Params returns the client's effective parameters.
func (c *Client) Params() ClientParams { return c.p }

// BatchStats returns the client's batcher counters (sizes, flush
// causes, pipeline stalls).
func (c *Client) BatchStats() session.BatchStats { return c.batcher.Stats }

// MaxInflight returns the deepest pipeline reached per shard lane.
func (c *Client) MaxInflight() map[string]int { return c.batcher.MaxInflight() }

// Submit issues one keyed request and returns its sequence number. The
// command is applied exactly once on the owning shard regardless of
// how many retries, redirects or resubmissions it takes to land.
// Requests on the same key are a session: they apply in submission
// order (per-key FIFO — a later request waits for the earlier one's
// outcome), while distinct keys proceed in parallel, batched per
// owning shard.
func (c *Client) Submit(key string, cmd int64) uint64 {
	c.seq++
	r := &request{
		key:         key,
		cmd:         cmd,
		seq:         c.seq,
		shard:       c.router.ShardFor(key),
		submittedAt: c.eng.Now(),
	}
	c.reqs[r.seq] = r
	c.Stats.Submitted++
	r.trace = c.eng.Tracer().Begin("kv.write", r.shard)
	r.trace.SetLabelKey(key, r.seq, c.p.Node)
	q := c.perKey[key]
	c.perKey[key] = append(q, r)
	if len(q) > 0 {
		r.state = stWaiting // an earlier request on key holds the turn
		r.qspan = r.trace.Span("queue.key", trace.LayerQueue)
		return r.seq
	}
	c.enqueue(r)
	return r.seq
}

// enqueue hands one head-of-key request to the batcher. Because only
// heads enter, a batch never carries two ops on one key — the per-key
// FIFO survives batching.
func (c *Client) enqueue(r *request) {
	r.state = stBatching
	r.qspan.End()
	r.bspan = r.trace.Span("batch.wait", trace.LayerBatch)
	c.batcher.Add(laneName(r.shard), r)
}

// laneName renders a shard index as a batcher lane.
func laneName(shard int) string { return fmt.Sprintf("s%d", shard) }

// launch emits one flushed batch: it becomes a session call whose
// attempts send the batch envelope at the owning group's current
// primary.
func (c *Client) launch(lane string, ops []*request) {
	c.nextBat++
	b := &batch{id: c.nextBat, shard: ops[0].shard, ops: ops}
	c.batches[b.id] = b
	c.order = append(c.order, b.id)
	traces := make([]trace.Ref, len(ops))
	for i, r := range ops {
		r.state = stInflight
		r.bspan.End()
		r.wspan = r.trace.Span("rpc.batch", trace.LayerWire)
		traces[i] = r.trace.Ref()
	}
	g := c.router.group(b.shard)
	b.call = c.sess.Go(session.Spec{
		Label:      c.batchLabel(b),
		Node:       c.p.Node,
		Timeout:    c.p.RetryTimeout,
		MaxRetries: c.p.MaxRetries,
		FailFast:   c.p.Policy == FailFast,
		Traces:     traces,
		Send: func(attempt int) {
			b.target = g.Replication().Primary()
			env := batchEnv{Client: c.p.Node, Batch: b.id, Attempt: attempt, Ops: make([]batchOp, len(b.ops))}
			for i, r := range b.ops {
				env.Ops[i] = batchOp{Key: r.key, Cmd: r.cmd, Seq: r.seq, Trace: r.trace.Ref()}
			}
			_, _ = c.net.Send(c.p.Node, b.target, g.ReqPort(), env, 48*len(b.ops))
		},
		OnTimeout:  func() { c.Stats.Timeouts++ },
		OnRetry:    func() { c.Stats.Retries++ },
		OnPark:     func() { c.Stats.Queued++ },
		OnResubmit: func() { c.Stats.Resubmitted++ },
		OnFail:     func() { c.failBatch(b) },
	})
}

// batchLabel renders a batch for the monitor log: singletons keep the
// per-request label, real batches carry their size.
func (c *Client) batchLabel(b *batch) string {
	if len(b.ops) == 1 {
		return fmt.Sprintf("shard.%s#%d", b.ops[0].key, b.ops[0].seq)
	}
	return fmt.Sprintf("shard.b%d@s%d[%d]", b.id, b.shard, len(b.ops))
}

// finishKey retires the head request of its key's session (acked or
// abandoned) and hands the turn to the next waiting request.
func (c *Client) finishKey(r *request) {
	q := c.perKey[r.key]
	if len(q) == 0 || q[0] != r {
		return
	}
	q = q[1:]
	if len(q) == 0 {
		delete(c.perKey, r.key)
		return
	}
	c.perKey[r.key] = q
	c.enqueue(q[0])
}

// retire marks one batch done and frees its pipeline slot (after the
// per-op bookkeeping ran, so freshly unblocked per-key successors can
// ride the freed slot).
func (c *Client) retire(b *batch) {
	b.done = true
	b.call.Finish()
	delete(c.batches, b.id)
	c.batcher.Complete(laneName(b.shard))
}

// failBatch abandons every op of a batch (fail-fast exhaustion).
func (c *Client) failBatch(b *batch) {
	if b.done {
		return
	}
	for _, r := range b.ops {
		r.state = stFailed
		c.Stats.FailedFast++
		c.Failed = append(c.Failed, r.seq)
		r.trace.Violate("failed fast: retry budget exhausted")
		r.trace.Finish()
		c.finishKey(r)
	}
	c.retire(b)
}

// sweepLive iterates the live batches in emission order, compacting
// retired ids on the way — the scan fires on every republish, so it
// must stay proportional to the live set, not the run's history.
func (c *Client) sweepLive(fn func(*batch)) {
	live := c.order[:0]
	for _, id := range c.order {
		b := c.batches[id]
		if b == nil || b.done {
			continue
		}
		live = append(live, id)
		fn(b)
	}
	c.order = live
}

// redirectInflight re-resolves in-flight batches of a republished
// shard: when the new primary differs from the attempt's target the
// batch redirects immediately instead of waiting out its timeout.
func (c *Client) redirectInflight(g *Group) {
	p := g.Replication().Primary()
	c.sweepLive(func(b *batch) {
		if !b.call.Inflight() || b.shard != g.Index() || b.target == p {
			return
		}
		c.Stats.Redirects++
		b.call.Redirect(fmt.Sprintf("republish: n%d -> n%d", b.target, p))
	})
}

// handleResp consumes one server response.
func (c *Client) handleResp(m *netsim.Message) {
	env, ok := m.Payload.(respEnv)
	if !ok {
		return
	}
	b := c.batches[env.Batch]
	if b == nil || b.done {
		return // late duplicate of an answered batch
	}
	switch env.Kind {
	case respOK:
		// A late OK is accepted from any attempt — the commands landed.
		now := c.eng.Now()
		for _, res := range env.Results {
			r := c.reqs[res.Seq]
			if r == nil || r.state == stAcked || r.state == stFailed {
				continue
			}
			r.state = stAcked
			lat := now.Sub(r.submittedAt)
			c.mAck.ObserveD(lat)
			c.Stats.Acked++
			c.Stats.SumLatency += lat
			if lat > c.Stats.MaxLatency {
				c.Stats.MaxLatency = lat
			}
			ack := Ack{Key: r.key, Seq: r.seq, Cmd: r.cmd, Result: res.Result, At: now, Latency: lat}
			c.Acks = append(c.Acks, ack)
			r.wspan.End()
			r.trace.Finish()
			c.finishKey(r)
			if c.onAck != nil {
				c.onAck(ack)
			}
		}
		c.retire(b)
	case respRedirect:
		if !b.call.Inflight() || env.Attempt != b.call.Attempt() {
			return // a superseded attempt's verdict; the live one decides
		}
		c.Stats.Redirects++
		b.call.Redirect(fmt.Sprintf("server: n%d -> n%d", b.target, env.Primary))
	case respBlocked:
		if !b.call.Inflight() || env.Attempt != b.call.Attempt() {
			return // a superseded attempt's verdict; the live one decides
		}
		c.Stats.Blocked++
		b.call.Fail("blocked")
	}
}
