package shard

import (
	"fmt"

	"hades/internal/replication"
)

// Verify checks the sharded data plane's safety contract after a run,
// against the authoritative apply logs of the shard groups:
//
//   - exactly-once: every acknowledged request appears in the owning
//     group's authoritative history exactly once, with the result the
//     client was given;
//   - per-key order: within the authoritative history, each client's
//     requests on each key apply in submission (sequence) order —
//     with single-writer keys this is per-key linearizability, since
//     acks only ever come from the quorum-holding primary lineage.
//
// The authoritative history is a hole-free replica's log — one never
// down and never view-excluded (semi-active followers execute
// everything, so any replica that stayed in every view holds the full
// lineage). Verify requires semi-active shards: under passive
// replication acknowledged work since the last checkpoint is lost on
// failover by design, so the exactly-once clause cannot hold.
func Verify(r *Router, clients []*Client) error {
	for _, g := range r.Groups() {
		if s := g.Replication().Style(); s != replication.SemiActive {
			return fmt.Errorf("shard: verify needs semi-active shards (group %q is %s)", g.Name(), s)
		}
	}
	// Authoritative logs, indexed per group once.
	type entryKey struct {
		client int
		seq    uint64
	}
	logs := make([]map[entryKey]Applied, len(r.Groups()))
	counts := make([]map[entryKey]int, len(r.Groups()))
	for i, g := range r.Groups() {
		node, ok := g.AuthoritativeNode()
		if !ok {
			return fmt.Errorf("shard: group %q has no hole-free replica to verify against", g.Name())
		}
		logs[i] = make(map[entryKey]Applied)
		counts[i] = make(map[entryKey]int)
		lastSeq := make(map[string]map[int]uint64) // key → client → last seq
		for _, a := range g.ApplyLog(node) {
			k := entryKey{client: a.Client, seq: a.Seq}
			counts[i][k]++
			logs[i][k] = a
			perKey := lastSeq[a.Key]
			if perKey == nil {
				perKey = make(map[int]uint64)
				lastSeq[a.Key] = perKey
			}
			if last := perKey[a.Client]; a.Seq <= last {
				return fmt.Errorf("shard: group %q key %q: client n%d seq %d applied after seq %d (per-key order violated)",
					g.Name(), a.Key, a.Client, a.Seq, last)
			}
			perKey[a.Client] = a.Seq
		}
	}
	for _, c := range clients {
		for _, ack := range c.Acks {
			idx := r.ShardFor(ack.Key)
			k := entryKey{client: c.Node(), seq: ack.Seq}
			switch n := counts[idx][k]; {
			case n == 0:
				return fmt.Errorf("shard: acked request n%d#%d (key %q) missing from group %q history (acknowledged write lost)",
					c.Node(), ack.Seq, ack.Key, r.Groups()[idx].Name())
			case n > 1:
				return fmt.Errorf("shard: acked request n%d#%d (key %q) applied %d times in group %q (exactly-once violated)",
					c.Node(), ack.Seq, ack.Key, n, r.Groups()[idx].Name())
			}
			a := logs[idx][k]
			if a.Result != ack.Result || a.Key != ack.Key {
				return fmt.Errorf("shard: acked request n%d#%d: client saw (key %q, result %d), history holds (key %q, result %d)",
					c.Node(), ack.Seq, ack.Key, ack.Result, a.Key, a.Result)
			}
		}
	}
	return nil
}
