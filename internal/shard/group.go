package shard

import (
	"fmt"

	"hades/internal/membership"
	"hades/internal/metrics"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/replication"
	"hades/internal/simkern"
	"hades/internal/trace"
	"hades/internal/vtime"
)

// respPort is the default port client replies arrive on (one client
// per node and per data plane; the cluster layer scopes it per set).
const respPort = "shard.resp"

// batchOp is one keyed operation inside a batched client submission.
// Trace rides the envelope so the server opens the replication span on
// the op's own causal trace (single-process simulation: the
// generation-checked ref is the propagation format — safe even when a
// late duplicate outlives its recycled trace).
type batchOp struct {
	Key   string
	Cmd   int64
	Seq   uint64
	Trace trace.Ref
}

// batchEnv is one batched client submission crossing the wire: every
// op targets this shard, and the whole batch is admitted (or bounced)
// as one routing decision. Unbatched clients send batches of one.
// Attempt is the client's attempt counter for the batch, echoed back
// in failure responses so superseded attempts' verdicts are discarded.
type batchEnv struct {
	Client  int // client node id
	Batch   uint64
	Attempt int
	Ops     []batchOp
}

// TraceRefs implements trace.Carrier: a dropped batch envelope marks
// every op's trace violating (the omission rule).
func (e batchEnv) TraceRefs() []trace.Ref {
	out := make([]trace.Ref, len(e.Ops))
	for i, op := range e.Ops {
		out[i] = op.Trace
	}
	return out
}

// respKind classifies a server response.
type respKind uint8

const (
	// respOK carries the applied (or dedup-cached) results, op order.
	respOK respKind = iota + 1
	// respRedirect tells the client which node the server believes is
	// the group's current primary.
	respRedirect
	// respBlocked is the stale-view rejection: the server cannot reach
	// a majority of its installed view, so serving would risk acking a
	// write the merge view will discard.
	respBlocked
)

// opResult is one op's result inside a batch response.
type opResult struct {
	Seq    uint64
	Result int64
}

// respEnv is one server response to a batch. Attempt echoes the
// batch's attempt counter (stale-attempt failure responses are ignored
// by the client; a late OK is accepted from any attempt — the commands
// landed).
type respEnv struct {
	Shard   string
	Batch   uint64
	Attempt int
	Kind    respKind
	Primary int        // respRedirect only
	Results []opResult // respOK only, op order
}

// Applied records one fresh state-machine apply at one replica — the
// per-replica log Verify checks exactly-once and per-key order against.
type Applied struct {
	Key    string
	Client int
	Seq    uint64
	Cmd    int64
	Result int64
	At     vtime.Time
}

// GroupStats counts the routing outcomes at one shard's replicas.
type GroupStats struct {
	// Requests counts client requests arriving at any replica.
	Requests int
	// Served counts OK responses sent (fresh applies and dedup hits).
	Served int
	// Redirects counts requests bounced to the current primary.
	Redirects int
	// Blocked counts stale-view rejections (no local quorum).
	Blocked int
}

// pendingBatch tracks one accepted client batch until every op's
// authoritative reply lands, at which point one response answers the
// whole batch.
type pendingBatch struct {
	env       batchEnv
	from      int // client node to answer
	remaining int
	results   []opResult
	responded bool
}

// pendingOp tracks one accepted op through the replication layer: its
// identity for the apply logs, and the batch its reply completes
// (nil for transaction-layer submissions, which answer their own
// client).
type pendingOp struct {
	op     batchOp
	client int
	batch  *pendingBatch
	idx    int
	done   bool
	span   trace.SpanRef // the op's replication-round span
}

// GroupConfig parameterises one shard group.
type GroupConfig struct {
	// Name scopes the shard's network ports and its monitor records.
	Name string
	// Index is the shard's position on the ring.
	Index int
	// RespPort is the port client responses are sent to (empty selects
	// the default; data planes coexisting on one cluster need distinct
	// ports, which the cluster layer derives from the set name).
	RespPort string
	// Replication configures the underlying replica group. Replicas
	// must be members of the membership service's universe.
	Replication replication.Config
}

// Group is the server side of one shard: a replicated state machine
// whose replicas accept keyed client requests, redirect non-primaries
// to the current primary, reject service without a local quorum, and
// keep per-replica apply logs for verification.
type Group struct {
	eng *simkern.Engine
	net *netsim.Network
	mem *membership.Service
	rep *replication.Group

	name     string
	index    int
	respPort string
	nodes    []int
	// replSpan/applySpan are the per-op trace span names, precomputed
	// because they are minted on every replicated op.
	replSpan  string
	applySpan string

	pending map[uint64]*pendingOp
	logs    map[int][]Applied
	// kv is each replica's keyed view: the last applied write's command
	// per key, derived from the apply log (the transaction layer reads
	// it at prepare time).
	kv map[int]map[string]int64
	// holed marks replicas whose apply log has a hole: they were down,
	// or excluded from an agreed view while alive (a partition-isolated
	// replica misses the majority's applies, and the merge state
	// transfer restores State/Seen but does not backfill the log).
	holed map[int]bool

	// Stats counts the routing outcomes for the harness.
	Stats GroupStats

	// open counts admitted ops not yet retired by an authoritative
	// reply (the metrics plane samples it as the shard's queue depth);
	// mOps and mKeys are the per-shard admission counter and the
	// per-key hotness sketch, all nil-safe when the plane is off.
	open  int
	mOps  *metrics.Counter
	mKeys *metrics.TopK
}

// NewGroup builds one shard group over a membership service: it owns
// its replication group (failover driven by installed views) and binds
// the shard request port on every replica.
func NewGroup(eng *simkern.Engine, net *netsim.Network, mem *membership.Service, cfg GroupConfig) (*Group, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("shard: group needs a name")
	}
	if cfg.Replication.Name == "" {
		cfg.Replication.Name = cfg.Name
	}
	if cfg.Replication.Style == 0 {
		cfg.Replication.Style = replication.SemiActive
	}
	if cfg.Replication.Style == replication.Active {
		return nil, fmt.Errorf("shard: group %q: active replication has no primary to route to", cfg.Name)
	}
	if len(cfg.Replication.Replicas) == 0 {
		cfg.Replication.Replicas = mem.Nodes()
	}
	if cfg.RespPort == "" {
		cfg.RespPort = respPort
	}
	g := &Group{
		eng:      eng,
		net:      net,
		mem:      mem,
		name:     cfg.Name,
		index:    cfg.Index,
		respPort: cfg.RespPort,
		nodes:    append([]int(nil), cfg.Replication.Replicas...),
		pending:  make(map[uint64]*pendingOp),
		logs:     make(map[int][]Applied),
		kv:       make(map[int]map[string]int64),
		holed:    make(map[int]bool),
	}
	g.replSpan = "replicate." + g.name
	g.applySpan = "apply." + g.name
	g.mOps = eng.Metrics().Counter("shard.ops." + g.name)
	g.mKeys = eng.Metrics().Keys()
	eng.Metrics().GaugeFunc("shard.queue."+g.name, func() int64 { return int64(g.open) })
	rep, err := replication.NewGroup(eng, net, mem, cfg.Replication, g.finish)
	if err != nil {
		return nil, err
	}
	g.rep = rep
	rep.OnApplyHook(g.recordApply)
	for _, n := range g.nodes {
		node := n
		net.Bind(node, g.ReqPort(), func(m *netsim.Message) { g.handleRequest(node, m) })
	}
	net.OnDownChange(func(node int, down bool) {
		if down && g.rep.Machine(node) != nil {
			g.holed[node] = true
		}
	})
	// A replica excluded from an agreed view while alive (a blocked
	// minority) misses every apply of that view: its log is holed even
	// though it was never down.
	mem.OnChange(func(v membership.View) {
		for _, n := range g.nodes {
			if !v.Contains(n) {
				g.holed[n] = true
			}
		}
	})
	return g, nil
}

// Name returns the shard group's name.
func (g *Group) Name() string { return g.name }

// Index returns the shard's position on the ring.
func (g *Group) Index() int { return g.index }

// Nodes returns the replica nodes, in promotion order.
func (g *Group) Nodes() []int { return append([]int(nil), g.nodes...) }

// Replication returns the underlying replica group.
func (g *Group) Replication() *replication.Group { return g.rep }

// Membership returns the shard's membership service.
func (g *Group) Membership() *membership.Service { return g.mem }

// ReqPort returns the port replicas accept client requests on.
func (g *Group) ReqPort() string { return "shard." + g.name + ".req" }

// ApplyLog returns the fresh applies observed at one replica, in order.
func (g *Group) ApplyLog(node int) []Applied {
	return append([]Applied(nil), g.logs[node]...)
}

// AuthoritativeNode returns the replica whose apply log is the
// authoritative history: the current primary, or — if the primary's
// log is holed (it was down, or view-excluded while partitioned;
// rejoin state transfers restore state, not logs) — the first
// hole-free replica in promotion order.
func (g *Group) AuthoritativeNode() (int, bool) {
	p := g.rep.Primary()
	if !g.holed[p] {
		return p, true
	}
	for _, n := range g.nodes {
		if !g.holed[n] {
			return n, true
		}
	}
	return -1, false
}

// handleRequest serves one client batch arriving at replica node: the
// routing decision (quorum, primaryship) is made once for the batch,
// and an admitted batch enters the replicated machine as one round
// whose items keep their per-op dedup tags.
func (g *Group) handleRequest(node int, m *netsim.Message) {
	env, ok := m.Payload.(batchEnv)
	if !ok || g.net.NodeDown(node) || len(env.Ops) == 0 {
		return
	}
	g.Stats.Requests += len(env.Ops)
	if !g.mem.HasQuorum(node) {
		// Stale-view rejection: this replica cannot reach a majority of
		// its installed view, so it must not serve — an ack here could
		// be overwritten by the authoritative majority at the merge.
		g.Stats.Blocked++
		if log := g.eng.Log(); log != nil {
			log.Recordf(g.eng.Now(), monitor.KindQuorumBlocked, node, g.name, "rejected c%d b%d (%d ops): no quorum", env.Client, env.Batch, len(env.Ops))
		}
		for _, op := range env.Ops {
			op.Trace.Instant("blocked at n%d: no quorum", node)
		}
		g.respond(node, m.From, respEnv{Shard: g.name, Batch: env.Batch, Attempt: env.Attempt, Kind: respBlocked})
		return
	}
	if p := g.rep.Primary(); node != p {
		g.Stats.Redirects++
		if log := g.eng.Log(); log != nil {
			log.Recordf(g.eng.Now(), monitor.KindRedirect, node, g.name, "c%d b%d -> n%d", env.Client, env.Batch, p)
		}
		g.respond(node, m.From, respEnv{Shard: g.name, Batch: env.Batch, Attempt: env.Attempt, Kind: respRedirect, Primary: p})
		return
	}
	pb := &pendingBatch{env: env, from: m.From, remaining: len(env.Ops), results: make([]opResult, len(env.Ops))}
	items := make([]replication.BatchItem, len(env.Ops))
	for i, op := range env.Ops {
		items[i] = replication.BatchItem{
			Cmd: op.Cmd,
			Tag: replication.ClientSeq{Client: uint64(env.Client) + 1, Seq: op.Seq},
		}
		pb.results[i].Seq = op.Seq
	}
	ids := g.rep.SubmitBatch(node, items)
	for i, id := range ids {
		g.pending[id] = &pendingOp{
			op: env.Ops[i], client: env.Client, batch: pb, idx: i,
			span: env.Ops[i].Trace.Span(g.replSpan, trace.LayerReplicate),
		}
		g.open++
		g.mOps.Inc()
		g.mKeys.Touch(env.Ops[i].Key, g.index)
	}
}

// recordApply appends one fresh apply to node's log (replication's
// OnApply hook; suppressed duplicates never reach it).
func (g *Group) recordApply(node int, reqID uint64, result int64) {
	po := g.pending[reqID]
	if po == nil {
		return // a direct Submit, not a routed client request
	}
	g.logs[node] = append(g.logs[node], Applied{
		Key:    po.op.Key,
		Client: po.client,
		Seq:    po.op.Seq,
		Cmd:    po.op.Cmd,
		Result: result,
		At:     g.eng.Now(),
	})
	view := g.kv[node]
	if view == nil {
		view = make(map[string]int64)
		g.kv[node] = view
	}
	view[po.op.Key] = po.op.Cmd
}

// KeyValue returns node's view of the last applied write command on
// key (false if the key was never written there). The transaction
// layer serves reads from the primary's view under the key's lock.
func (g *Group) KeyValue(node int, key string) (int64, bool) {
	v, ok := g.kv[node][key]
	return v, ok
}

// TxnTagSpace offsets transaction-write dedup tags away from the data
// plane clients' tag space, so a transaction client and a request
// client never collide in the replicated dedup table.
const TxnTagSpace = uint64(1) << 32

// TxnTag builds the dedup tag of one transactional write.
func TxnTag(client int, seq uint64) replication.ClientSeq {
	return replication.ClientSeq{Client: TxnTagSpace | (uint64(client) + 1), Seq: seq}
}

// SubmitKeyed routes one keyed command into the shard's replicated
// machine on behalf of the transaction layer: submitted at the current
// primary, deduplicated under the transaction tag space, and recorded
// in the per-replica apply logs under the owning client's identity —
// the same histories Verify and txn.Verify audit. It returns the
// replication request id so the caller can observe the apply.
func (g *Group) SubmitKeyed(key string, cmd int64, client int, seq uint64, tr trace.Ref) uint64 {
	id := g.rep.SubmitTagged(g.rep.Primary(), cmd, TxnTag(client, seq))
	// No batch: the transaction layer answers its own client.
	g.pending[id] = &pendingOp{
		op: batchOp{Key: key, Cmd: cmd, Seq: seq}, client: client,
		span: tr.Span(g.applySpan, trace.LayerReplicate),
	}
	g.open++
	g.mOps.Inc()
	g.mKeys.Touch(key, g.index)
	return id
}

// finish is the replication reply hook: the primary's (authoritative)
// reply retires one op, and the batch answers its client when its last
// op retires.
func (g *Group) finish(reqID uint64, result int64, _ bool) {
	po := g.pending[reqID]
	if po == nil || po.done {
		return
	}
	po.done = true
	po.span.End()
	g.open--
	pb := po.batch
	if pb == nil || pb.responded {
		return
	}
	pb.results[po.idx].Result = result
	g.Stats.Served++
	pb.remaining--
	if pb.remaining > 0 {
		return
	}
	pb.responded = true
	g.respond(g.rep.Primary(), pb.from, respEnv{
		Shard: g.name, Batch: pb.env.Batch, Attempt: pb.env.Attempt,
		Kind: respOK, Results: pb.results,
	})
}

// respond sends one response back to the client node.
func (g *Group) respond(from, to int, env respEnv) {
	if from == to {
		return // a co-located client would be a direct call; unsupported
	}
	_, _ = g.net.Send(from, to, g.respPort, env, 32)
}
