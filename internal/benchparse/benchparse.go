// Package benchparse turns `go test -bench` text output into a
// structured baseline record, so CI can persist a BENCH_<sha>.json
// artifact per commit and the performance trajectory of the hot paths
// (eventq, rbcast, feasibility, netsim) is tracked over time instead
// of living in commit messages.
package benchparse

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including the -N GOMAXPROCS
	// suffix, e.g. "BenchmarkMsgKey-8".
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in (from the
	// preceding "pkg:" line; empty if none was seen).
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"nsPerOp"`
	// BytesPerOp and AllocsPerOp are present only with -benchmem.
	BytesPerOp  float64 `json:"bytesPerOp,omitempty"`
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`
	// MBPerSec is present only for benchmarks calling SetBytes.
	MBPerSec float64 `json:"mbPerSec,omitempty"`
}

// Baseline is the persisted record for one commit.
type Baseline struct {
	SHA        string      `json:"sha,omitempty"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output and collects every benchmark
// line. Non-benchmark lines (PASS, ok, warnings) are skipped; a
// malformed Benchmark... line is an error, so CI fails loudly instead
// of silently recording an empty baseline.
func Parse(r io.Reader) (Baseline, error) {
	var b Baseline
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			b.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			b.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			bm, err := parseLine(line)
			if err != nil {
				return b, err
			}
			bm.Package = pkg
			b.Benchmarks = append(b.Benchmarks, bm)
		}
	}
	return b, sc.Err()
}

// parseLine parses one "BenchmarkX-8  N  12.3 ns/op [...]" line.
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("benchparse: short benchmark line %q", line)
	}
	bm := Benchmark{Name: fields[0]}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchparse: bad iteration count in %q: %w", line, err)
	}
	bm.Iterations = iters
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchparse: bad value in %q: %w", line, err)
		}
		switch fields[i+1] {
		case "ns/op":
			bm.NsPerOp = val
		case "B/op":
			bm.BytesPerOp = val
		case "allocs/op":
			bm.AllocsPerOp = val
		case "MB/s":
			bm.MBPerSec = val
		}
	}
	if bm.NsPerOp == 0 && len(fields) > 2 {
		return Benchmark{}, fmt.Errorf("benchparse: no ns/op in %q", line)
	}
	return bm, nil
}

// Write renders the baseline as indented JSON.
func (b Baseline) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
