package benchparse

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: hades/internal/rbcast
cpu: fake
BenchmarkMsgKey-8        1000000        52.1 ns/op        0 B/op        0 allocs/op
BenchmarkFlood-8         20000          61250 ns/op
PASS
ok   hades/internal/rbcast 1.2s
pkg: hades/internal/feasibility
BenchmarkEDF-8           500            2.25 ns/op        128 B/op      2 allocs/op
PASS
ok   hades/internal/feasibility 0.8s
`

func TestParseCollectsBenchmarks(t *testing.T) {
	b, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if b.GoOS != "linux" || b.GoArch != "amd64" {
		t.Fatalf("platform %q/%q", b.GoOS, b.GoArch)
	}
	if len(b.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(b.Benchmarks))
	}
	first := b.Benchmarks[0]
	if first.Name != "BenchmarkMsgKey-8" || first.Package != "hades/internal/rbcast" {
		t.Fatalf("first benchmark %+v", first)
	}
	if first.Iterations != 1000000 || first.NsPerOp != 52.1 || first.AllocsPerOp != 0 {
		t.Fatalf("first benchmark values %+v", first)
	}
	last := b.Benchmarks[2]
	if last.Package != "hades/internal/feasibility" || last.BytesPerOp != 128 || last.AllocsPerOp != 2 {
		t.Fatalf("last benchmark %+v", last)
	}
}

func TestParseRejectsMalformedBenchmarkLine(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkBroken-8 notanumber 12 ns/op\n")); err == nil {
		t.Fatal("malformed iteration count accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkBroken-8\n")); err == nil {
		t.Fatal("short benchmark line accepted")
	}
}

func TestWriteRoundTrips(t *testing.T) {
	b, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	b.SHA = "abc123"
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Baseline
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.SHA != "abc123" || len(back.Benchmarks) != 3 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Benchmarks[1].NsPerOp != 61250 {
		t.Fatalf("ns/op lost: %+v", back.Benchmarks[1])
	}
}
