package benchparse

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: hades/internal/rbcast
cpu: fake
BenchmarkMsgKey-8        1000000        52.1 ns/op        0 B/op        0 allocs/op
BenchmarkFlood-8         20000          61250 ns/op
PASS
ok   hades/internal/rbcast 1.2s
pkg: hades/internal/feasibility
BenchmarkEDF-8           500            2.25 ns/op        128 B/op      2 allocs/op
PASS
ok   hades/internal/feasibility 0.8s
`

func TestParseCollectsBenchmarks(t *testing.T) {
	b, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if b.GoOS != "linux" || b.GoArch != "amd64" {
		t.Fatalf("platform %q/%q", b.GoOS, b.GoArch)
	}
	if len(b.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(b.Benchmarks))
	}
	first := b.Benchmarks[0]
	if first.Name != "BenchmarkMsgKey-8" || first.Package != "hades/internal/rbcast" {
		t.Fatalf("first benchmark %+v", first)
	}
	if first.Iterations != 1000000 || first.NsPerOp != 52.1 || first.AllocsPerOp != 0 {
		t.Fatalf("first benchmark values %+v", first)
	}
	last := b.Benchmarks[2]
	if last.Package != "hades/internal/feasibility" || last.BytesPerOp != 128 || last.AllocsPerOp != 2 {
		t.Fatalf("last benchmark %+v", last)
	}
}

func TestParseRejectsMalformedBenchmarkLine(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkBroken-8 notanumber 12 ns/op\n")); err == nil {
		t.Fatal("malformed iteration count accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkBroken-8\n")); err == nil {
		t.Fatal("short benchmark line accepted")
	}
}

func TestWriteRoundTrips(t *testing.T) {
	b, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	b.SHA = "abc123"
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Baseline
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.SHA != "abc123" || len(back.Benchmarks) != 3 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Benchmarks[1].NsPerOp != 61250 {
		t.Fatalf("ns/op lost: %+v", back.Benchmarks[1])
	}
}

func baselineOf(benches ...Benchmark) Baseline { return Baseline{Benchmarks: benches} }

// TestDiffClassifiesMovement: movements past the threshold are
// regressions/improvements, inside it unchanged, and one-sided
// benchmarks are added/removed.
func TestDiffClassifiesMovement(t *testing.T) {
	old := baselineOf(
		Benchmark{Name: "BenchmarkA-8", Package: "p", NsPerOp: 100},
		Benchmark{Name: "BenchmarkB-8", Package: "p", NsPerOp: 100},
		Benchmark{Name: "BenchmarkC-8", Package: "p", NsPerOp: 100},
		Benchmark{Name: "BenchmarkGone-8", Package: "p", NsPerOp: 50},
	)
	cur := baselineOf(
		Benchmark{Name: "BenchmarkA-8", Package: "p", NsPerOp: 125}, // +25%: regression
		Benchmark{Name: "BenchmarkB-8", Package: "p", NsPerOp: 70},  // -30%: improvement
		Benchmark{Name: "BenchmarkC-8", Package: "p", NsPerOp: 105}, // +5%: unchanged
		Benchmark{Name: "BenchmarkNew-8", Package: "p", NsPerOp: 10},
	)
	r := Diff(old, cur, 0.10)
	if !r.HasRegressions() || len(r.Regressions) != 1 || r.Regressions[0].Name != "BenchmarkA-8" {
		t.Fatalf("regressions %+v", r.Regressions)
	}
	if got := r.Regressions[0].Change; got < 0.24 || got > 0.26 {
		t.Fatalf("regression change %v, want ~0.25", got)
	}
	if len(r.Improvements) != 1 || r.Improvements[0].Name != "BenchmarkB-8" {
		t.Fatalf("improvements %+v", r.Improvements)
	}
	if r.Unchanged != 1 {
		t.Fatalf("unchanged %d, want 1", r.Unchanged)
	}
	if len(r.Added) != 1 || r.Added[0] != "p.BenchmarkNew-8" {
		t.Fatalf("added %v", r.Added)
	}
	if len(r.Removed) != 1 || r.Removed[0] != "p.BenchmarkGone-8" {
		t.Fatalf("removed %v", r.Removed)
	}
}

// TestDiffThresholdBoundary: exactly-at-threshold movement is not a
// regression (strictly greater flags), and the default threshold is
// 10%.
func TestDiffThresholdBoundary(t *testing.T) {
	old := baselineOf(Benchmark{Name: "BenchmarkX-8", NsPerOp: 100})
	atTen := baselineOf(Benchmark{Name: "BenchmarkX-8", NsPerOp: 110})
	if r := Diff(old, atTen, 0); r.HasRegressions() {
		t.Fatalf("+10.0%% flagged at a 10%% threshold: %+v", r.Regressions)
	}
	over := baselineOf(Benchmark{Name: "BenchmarkX-8", NsPerOp: 111})
	if r := Diff(old, over, 0); !r.HasRegressions() {
		t.Fatal("+11% not flagged at the default threshold")
	}
}

// TestDiffRoundTripThroughFiles: a baseline written with Write is read
// back by Read and diffs cleanly against itself.
func TestDiffRoundTripThroughFiles(t *testing.T) {
	b := baselineOf(Benchmark{Name: "BenchmarkY-8", Package: "q", Iterations: 10, NsPerOp: 42})
	b.SHA = "abc"
	path := t.TempDir() + "/BENCH_abc.json"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SHA != "abc" || len(got.Benchmarks) != 1 || got.Benchmarks[0].NsPerOp != 42 {
		t.Fatalf("round trip mangled the baseline: %+v", got)
	}
	r := Diff(got, got, 0.10)
	if r.HasRegressions() || len(r.Improvements) != 0 || r.Unchanged != 1 {
		t.Fatalf("self-diff not clean: %+v", r)
	}
}
