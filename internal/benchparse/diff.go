package benchparse

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Delta is one benchmark's movement between two baselines.
type Delta struct {
	Name    string  `json:"name"`
	Package string  `json:"package,omitempty"`
	OldNs   float64 `json:"oldNs"`
	NewNs   float64 `json:"newNs"`
	// Change is the fractional ns/op movement, (new-old)/old:
	// positive = slower (a regression candidate).
	Change float64 `json:"change"`
}

// DiffReport compares two baselines benchmark-by-benchmark.
type DiffReport struct {
	// Threshold is the fractional movement that classifies a
	// regression or an improvement.
	Threshold float64
	// Regressions are benchmarks slower by more than Threshold,
	// largest movement first; Improvements the mirror image.
	Regressions  []Delta
	Improvements []Delta
	// Unchanged counts benchmarks within the threshold band.
	Unchanged int
	// Added and Removed list benchmarks present in only one baseline.
	Added, Removed []string
}

// HasRegressions reports whether any benchmark regressed past the
// threshold — the CI trend job's failure condition.
func (r DiffReport) HasRegressions() bool { return len(r.Regressions) > 0 }

// benchKey identifies a benchmark across baselines.
func benchKey(b Benchmark) string {
	if b.Package == "" {
		return b.Name
	}
	return b.Package + "." + b.Name
}

// Diff compares two baselines. threshold <= 0 selects 0.10 (10%).
// Benchmarks with a zero old ns/op are treated as added (no
// meaningful ratio).
func Diff(old, new Baseline, threshold float64) DiffReport {
	if threshold <= 0 {
		threshold = 0.10
	}
	r := DiffReport{Threshold: threshold}
	olds := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		olds[benchKey(b)] = b
	}
	seen := make(map[string]bool, len(new.Benchmarks))
	for _, b := range new.Benchmarks {
		key := benchKey(b)
		seen[key] = true
		ob, ok := olds[key]
		if !ok || ob.NsPerOp == 0 {
			r.Added = append(r.Added, key)
			continue
		}
		d := Delta{Name: b.Name, Package: b.Package, OldNs: ob.NsPerOp, NewNs: b.NsPerOp,
			Change: (b.NsPerOp - ob.NsPerOp) / ob.NsPerOp}
		switch {
		case d.Change > threshold:
			r.Regressions = append(r.Regressions, d)
		case d.Change < -threshold:
			r.Improvements = append(r.Improvements, d)
		default:
			r.Unchanged++
		}
	}
	for _, b := range old.Benchmarks {
		if key := benchKey(b); !seen[key] {
			r.Removed = append(r.Removed, key)
		}
	}
	sort.Slice(r.Regressions, func(i, j int) bool { return r.Regressions[i].Change > r.Regressions[j].Change })
	sort.Slice(r.Improvements, func(i, j int) bool { return r.Improvements[i].Change < r.Improvements[j].Change })
	sort.Strings(r.Added)
	sort.Strings(r.Removed)
	return r
}

// String renders the report for the CI log.
func (r DiffReport) String() string {
	var b strings.Builder
	pct := func(f float64) string { return fmt.Sprintf("%+.1f%%", f*100) }
	for _, d := range r.Regressions {
		fmt.Fprintf(&b, "REGRESSION %-50s %12.1f -> %12.1f ns/op (%s)\n", deltaKey(d), d.OldNs, d.NewNs, pct(d.Change))
	}
	for _, d := range r.Improvements {
		fmt.Fprintf(&b, "improved   %-50s %12.1f -> %12.1f ns/op (%s)\n", deltaKey(d), d.OldNs, d.NewNs, pct(d.Change))
	}
	for _, k := range r.Added {
		fmt.Fprintf(&b, "added      %s\n", k)
	}
	for _, k := range r.Removed {
		fmt.Fprintf(&b, "removed    %s\n", k)
	}
	fmt.Fprintf(&b, "%d regression(s), %d improvement(s), %d unchanged (threshold %.0f%%)\n",
		len(r.Regressions), len(r.Improvements), r.Unchanged, r.Threshold*100)
	return b.String()
}

func deltaKey(d Delta) string {
	if d.Package == "" {
		return d.Name
	}
	return d.Package + "." + d.Name
}

// Read loads a baseline JSON file written by Baseline.Write.
func Read(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, fmt.Errorf("benchparse: %w", err)
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("benchparse: parsing %s: %w", path, err)
	}
	return b, nil
}
