// Package consensus implements the consensus service of §2.2.1 as a
// round-based synchronous protocol (FloodSet) tolerating up to f crash
// or send-omission failures.
//
// Every process starts with a proposal; in each of f+1 rounds it
// broadcasts the set of values it has seen; after round f+1 every
// correct process decides the minimum of its set. In a synchronous
// system (which the simulated network's bounded delays provide) this
// guarantees agreement, validity and termination in exactly f+1 rounds —
// and, crucially for HADES, a *time bound*: decision happens at
// T0 + (f+1)·R, a constant that can enter a feasibility test.
package consensus

import (
	"sort"

	"hades/internal/eventq"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

// Config parameterises one consensus instance.
type Config struct {
	// Nodes lists the participants.
	Nodes []int
	// F is the number of crash/omission failures tolerated; the
	// protocol runs F+1 rounds.
	F int
	// Round is the round length; it must exceed the worst-case link
	// delay plus processing.
	Round vtime.Duration
	// WProc is the per-message processing cost.
	WProc vtime.Duration
}

// DefaultConfig sizes rounds from network bounds.
func DefaultConfig(net *netsim.Network, nodes []int, f int) Config {
	var dmax vtime.Duration
	for _, a := range nodes {
		for _, b := range nodes {
			if a == b {
				continue
			}
			if d, ok := net.DelayBound(a, b); ok && d > dmax {
				dmax = d
			}
		}
	}
	return Config{
		Nodes: nodes,
		F:     f,
		Round: dmax + net.WorstCaseReceivePath() + 50*vtime.Microsecond,
		WProc: 8 * vtime.Microsecond,
	}
}

// Result is one node's decision.
type Result struct {
	Node      int
	Decision  int64
	DecidedAt vtime.Time
	Rounds    int
}

// Instance is one run of consensus.
type Instance struct {
	eng  *simkern.Engine
	net  *netsim.Network
	cfg  Config
	port string

	sets    map[int]map[int64]bool // node → seen values
	decided map[int]Result
	done    func(Result)
	round   int
	started vtime.Time
}

// New creates a consensus instance with the given unique name.
// onDecide, if non-nil, fires once per correct node as it decides.
func New(eng *simkern.Engine, net *netsim.Network, name string, cfg Config, onDecide func(Result)) *Instance {
	c := &Instance{
		eng:     eng,
		net:     net,
		cfg:     cfg,
		port:    "consensus." + name,
		sets:    make(map[int]map[int64]bool),
		decided: make(map[int]Result),
		done:    onDecide,
	}
	for _, n := range cfg.Nodes {
		node := n
		net.Bind(node, c.port, func(m *netsim.Message) { c.receive(node, m) })
	}
	return c
}

// Propose starts the protocol with each node's initial value (map keyed
// by node). Nodes absent from proposals abstain (treated as crashed from
// the start).
func (c *Instance) Propose(proposals map[int]int64) {
	c.started = c.eng.Now()
	for _, n := range c.cfg.Nodes {
		if v, ok := proposals[n]; ok {
			c.sets[n] = map[int64]bool{v: true}
		}
	}
	c.runRound(1)
}

// runRound executes round r: everyone floods its set, then the next
// round (or the decision) is scheduled one round length later.
func (c *Instance) runRound(r int) {
	c.round = r
	for _, src := range c.cfg.Nodes {
		set := c.sets[src]
		if set == nil || c.net.NodeDown(src) {
			continue
		}
		vals := keysOf(set)
		for _, dst := range c.cfg.Nodes {
			if dst == src {
				continue
			}
			if _, err := c.net.Send(src, dst, c.port, vals, 8*len(vals)); err != nil {
				continue
			}
		}
	}
	c.eng.After(c.cfg.Round, eventq.ClassApp, func() {
		if r < c.cfg.F+1 {
			c.runRound(r + 1)
			return
		}
		c.decide()
	})
}

// receive merges a peer's value set.
func (c *Instance) receive(node int, m *netsim.Message) {
	if c.net.NodeDown(node) || c.sets[node] == nil {
		return
	}
	vals, ok := m.Payload.([]int64)
	if !ok {
		return
	}
	if c.cfg.WProc > 0 {
		c.eng.Processors()[node].RaiseIRQ("consensus", c.cfg.WProc, nil)
	}
	for _, v := range vals {
		c.sets[node][v] = true
	}
}

// decide has every correct participant decide min(set).
func (c *Instance) decide() {
	now := c.eng.Now()
	for _, n := range c.cfg.Nodes {
		set := c.sets[n]
		if set == nil || c.net.NodeDown(n) {
			continue
		}
		vals := keysOf(set)
		res := Result{Node: n, Decision: vals[0], DecidedAt: now, Rounds: c.round}
		c.decided[n] = res
		if c.done != nil {
			c.done(res)
		}
	}
}

// Decisions returns the decisions of all nodes that decided.
func (c *Instance) Decisions() map[int]Result {
	out := make(map[int]Result, len(c.decided))
	for k, v := range c.decided {
		out[k] = v
	}
	return out
}

// Bound returns the decision-time bound (f+1)·R.
func (c *Instance) Bound() vtime.Duration {
	return vtime.Duration(c.cfg.F+1) * c.cfg.Round
}

func keysOf(set map[int64]bool) []int64 {
	vals := make([]int64, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}
