package consensus

import (
	"testing"
	"testing/quick"

	"hades/internal/fault"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

const us = vtime.Microsecond

func rig(t *testing.T, n, f int) (*simkern.Engine, *netsim.Network, Config) {
	t.Helper()
	eng := simkern.NewEngine(monitor.NewLog(0), 31)
	nodes := make([]int, n)
	for i := 0; i < n; i++ {
		eng.AddProcessor("n", 0)
		nodes[i] = i
	}
	net := netsim.New(eng, netsim.Config{WAtm: 10 * us, WProto: 10 * us, PrioNet: simkern.PrioMax - 2})
	net.ConnectAll(nodes, 50*us, 150*us)
	return eng, net, DefaultConfig(net, nodes, f)
}

func proposals(vals ...int64) map[int]int64 {
	m := make(map[int]int64, len(vals))
	for i, v := range vals {
		m[i] = v
	}
	return m
}

func TestAgreementAndValidityNoFaults(t *testing.T) {
	eng, net, cfg := rig(t, 4, 1)
	c := New(eng, net, "c1", cfg, nil)
	c.Propose(proposals(30, 10, 20, 40))
	eng.RunUntilIdle()
	ds := c.Decisions()
	if len(ds) != 4 {
		t.Fatalf("decided %d/4", len(ds))
	}
	for n, r := range ds {
		if r.Decision != 10 {
			t.Fatalf("node %d decided %d, want 10 (min)", n, r.Decision)
		}
		if r.Rounds != 2 {
			t.Fatalf("rounds = %d, want f+1 = 2", r.Rounds)
		}
	}
}

func TestTerminationBound(t *testing.T) {
	eng, net, cfg := rig(t, 5, 2)
	var decidedAt vtime.Time
	c := New(eng, net, "c2", cfg, func(r Result) { decidedAt = r.DecidedAt })
	start := eng.Now()
	c.Propose(proposals(5, 4, 3, 2, 1))
	eng.RunUntilIdle()
	if decidedAt == 0 {
		t.Fatal("no decision")
	}
	if got := decidedAt.Sub(start); got > c.Bound() {
		t.Fatalf("decided after %s, bound %s", got, c.Bound())
	}
}

func TestCrashDuringProtocol(t *testing.T) {
	eng, net, cfg := rig(t, 4, 1)
	c := New(eng, net, "c3", cfg, nil)
	// Node 0 (holding the minimum) crashes mid-round 1.
	fault.CrashAt(eng, net, 0, vtime.Time(20*us), 0)
	c.Propose(proposals(1, 10, 20, 30))
	eng.RunUntilIdle()
	ds := c.Decisions()
	if len(ds) != 3 {
		t.Fatalf("decided %d/3 survivors", len(ds))
	}
	// All survivors agree (value depends on what escaped before the
	// crash — agreement is the property, not the specific value).
	var first int64 = -1
	for _, r := range ds {
		if first == -1 {
			first = r.Decision
		} else if r.Decision != first {
			t.Fatalf("disagreement: %v", ds)
		}
	}
}

// Property: under any single send-omission-faulty process (f=1, n=4),
// all correct processes decide the same value, and that value is one of
// the proposals (validity for FloodSet with min).
func TestAgreementPropertyOmission(t *testing.T) {
	prop := func(faulty uint8, seed int64) bool {
		fNode := int(faulty) % 4
		eng, net, cfg := rig(t, 4, 1)
		net.SetFault(&fault.OmissionFrom{Nodes: map[int]bool{fNode: true}, Port: "consensus.cx"})
		c := New(eng, net, "cx", cfg, nil)
		vals := proposals(seed%97, (seed/7)%89, (seed/11)%83, (seed/13)%79)
		c.Propose(vals)
		eng.RunUntilIdle()
		ds := c.Decisions()
		var decided []int64
		for n, r := range ds {
			if n == fNode {
				continue
			}
			decided = append(decided, r.Decision)
		}
		if len(decided) != 3 {
			return false
		}
		for _, d := range decided[1:] {
			if d != decided[0] {
				return false
			}
		}
		// Validity: the decision is one of the proposals.
		ok := false
		for _, v := range vals {
			if v == decided[0] {
				ok = true
			}
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAbstainersIgnored(t *testing.T) {
	eng, net, cfg := rig(t, 4, 1)
	c := New(eng, net, "c4", cfg, nil)
	p := proposals(7, 8, 9)
	delete(p, 2) // node 2 abstains entirely
	p[3] = 5
	c.Propose(p)
	eng.RunUntilIdle()
	ds := c.Decisions()
	if len(ds) != 3 {
		t.Fatalf("decided %d, want 3 (abstainer excluded)", len(ds))
	}
	for _, r := range ds {
		if r.Decision != 5 {
			t.Fatalf("decision %d, want 5", r.Decision)
		}
	}
}
