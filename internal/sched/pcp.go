package sched

import (
	"hades/internal/dispatcher"
	"hades/internal/heug"
)

// PCP implements a priority-ceiling protocol in the style of Chen and
// Lin's dynamic priority ceilings [CL90] (the paper's footnote 2),
// adapted to the HEUG model's all-at-start resource acquisition:
//
//   - each resource has a static ceiling: the highest base priority of
//     any unit that uses it;
//   - a job may acquire its resources only if its priority strictly
//     exceeds the ceilings of all resources currently held by *other*
//     jobs on its node (the PCP grant rule);
//   - while a job blocks, the holders responsible inherit its priority
//     through the dispatcher primitive, and revert on release.
//
// Compared to SRP, PCP achieves the same one-critical-section blocking
// bound but pays for it in priority-change traffic and extra context
// switches — experiment E-X2 measures exactly that difference.
type PCP struct {
	prim     dispatcher.Primitive
	ceilings map[srpKey]int
	heldBy   map[*dispatcher.Thread][]string // holder → resources held
	baseline map[*dispatcher.Thread]int      // pre-inheritance priorities
}

// NewPCP returns a fresh priority-ceiling policy.
func NewPCP() *PCP {
	return &PCP{
		ceilings: make(map[srpKey]int),
		heldBy:   make(map[*dispatcher.Thread][]string),
		baseline: make(map[*dispatcher.Thread]int),
	}
}

// Name implements dispatcher.ResourcePolicy.
func (*PCP) Name() string { return "PCP" }

// Init implements dispatcher.ResourcePolicy: compute static resource
// ceilings from the declared use sets. Priorities must already be
// assigned (App.Seal runs the scheduler's Init before the policy's).
func (p *PCP) Init(tasks []*heug.Task, prim dispatcher.Primitive) {
	p.prim = prim
	for _, t := range tasks {
		for _, e := range t.EUs {
			if e.Code == nil {
				continue
			}
			for _, r := range e.Code.Resources {
				k := srpKey{e.Code.Node, r.Resource}
				if e.Code.Prio > p.ceilings[k] {
					p.ceilings[k] = e.Code.Prio
				}
			}
		}
	}
}

// Ceiling returns a resource's ceiling on a node (test hook).
func (p *PCP) Ceiling(node int, resource string) int {
	return p.ceilings[srpKey{node, resource}]
}

// CanStart implements dispatcher.ResourcePolicy: the PCP grant rule. A
// thread that requests no resources always passes — its inversion is
// bounded by inheritance, not gating.
func (p *PCP) CanStart(th *dispatcher.Thread) bool {
	if len(th.EU().Code.Resources) == 0 {
		return true
	}
	node := th.Node()
	for other, res := range p.heldBy {
		if other == th || other.Node() != node {
			continue
		}
		for _, r := range res {
			if th.Priority() <= p.ceilings[srpKey{node, r}] {
				return false
			}
		}
	}
	return true
}

// OnGrant implements dispatcher.ResourcePolicy.
func (p *PCP) OnGrant(th *dispatcher.Thread) {
	if held := th.HeldResources(); len(held) > 0 {
		p.heldBy[th] = held
	}
}

// OnRelease implements dispatcher.ResourcePolicy: drop the hold record
// and undo any inheritance.
func (p *PCP) OnRelease(th *dispatcher.Thread) {
	delete(p.heldBy, th)
	if base, ok := p.baseline[th]; ok {
		delete(p.baseline, th)
		p.prim.SetPriority(th, base)
	}
}

// OnBlocked implements dispatcher.ResourcePolicy: priority inheritance.
// Every holder standing in the blocked thread's way — by a mode
// conflict (passed in) or by the ceiling gate (computed here) — inherits
// its priority if lower. Holders are processed in creation order so
// the resulting priority-change trace is deterministic.
func (p *PCP) OnBlocked(blocked *dispatcher.Thread, holders []*dispatcher.Thread) {
	all := make(map[*dispatcher.Thread]bool, len(holders))
	for _, h := range holders {
		all[h] = true
	}
	node := blocked.Node()
	for other, res := range p.heldBy {
		if other == blocked || other.Node() != node || all[other] {
			continue
		}
		for _, r := range res {
			if blocked.Priority() <= p.ceilings[srpKey{node, r}] {
				all[other] = true
				break
			}
		}
	}
	ordered := make([]*dispatcher.Thread, 0, len(all))
	for h := range all {
		ordered = append(ordered, h)
	}
	sortThreads(ordered)
	for _, h := range ordered {
		if h.Priority() < blocked.Priority() {
			if _, ok := p.baseline[h]; !ok {
				p.baseline[h] = h.Priority()
			}
			p.prim.SetPriority(h, blocked.Priority())
		}
	}
}

// sortThreads orders threads by global creation sequence.
func sortThreads(ts []*dispatcher.Thread) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].SeqNo() < ts[j-1].SeqNo(); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
