package sched_test

import (
	"testing"

	"hades/internal/core"
	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/monitor"
	"hades/internal/sched"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

func TestRMAssignsByPeriod(t *testing.T) {
	fast := heug.NewTask("fast", heug.PeriodicEvery(5*ms)).
		WithDeadline(5*ms).
		Code("e", heug.CodeEU{WCET: 100 * us}).MustBuild()
	slow := heug.NewTask("slow", heug.PeriodicEvery(50*ms)).
		WithDeadline(50*ms).
		Code("e", heug.CodeEU{WCET: 100 * us}).MustBuild()
	mid := heug.NewTask("mid", heug.PeriodicEvery(20*ms)).
		WithDeadline(20*ms).
		Code("e", heug.CodeEU{WCET: 100 * us}).MustBuild()
	rm := sched.NewRM()
	rm.Init([]*heug.Task{slow, fast, mid})
	pf, pm, ps := fast.EUs[0].Code.Prio, mid.EUs[0].Code.Prio, slow.EUs[0].Code.Prio
	if !(pf > pm && pm > ps) {
		t.Fatalf("RM order wrong: fast=%d mid=%d slow=%d", pf, pm, ps)
	}
	if rm.Cost() != 0 || rm.Wants(dispatcher.NotifAtv) {
		t.Error("RM must be static and free")
	}
}

func TestDMAssignsByDeadline(t *testing.T) {
	a := heug.NewTask("a", heug.SporadicEvery(50*ms)).
		WithDeadline(30*ms).
		Code("e", heug.CodeEU{WCET: 100 * us}).MustBuild()
	b := heug.NewTask("b", heug.SporadicEvery(20*ms)).
		WithDeadline(10*ms).
		Code("e", heug.CodeEU{WCET: 100 * us}).MustBuild()
	sched.NewDM().Init([]*heug.Task{a, b})
	if b.EUs[0].Code.Prio <= a.EUs[0].Code.Prio {
		t.Fatal("DM: shorter deadline must get higher priority")
	}
}

func TestEDFPicksEarliestDeadline(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 3})
	app := sys.NewApp("edf", sched.NewEDF(10*us), nil)
	mk := func(name string, d vtime.Duration) *heug.Task {
		return heug.NewTask(name, heug.AperiodicLaw()).
			WithDeadline(d).
			Code("e", heug.CodeEU{Node: 0, WCET: 2 * ms}).
			MustBuild()
	}
	app.MustAddTask(mk("far", 50*ms))
	app.MustAddTask(mk("near", 8*ms))
	app.MustAddTask(mk("mid", 20*ms))
	app.Seal()
	// All activated together: EDF must run near, mid, far.
	sys.ActivateAt("far", 0)
	sys.ActivateAt("near", 0)
	sys.ActivateAt("mid", 0)
	rep := sys.Run(100 * ms)
	if rep.Stats.DeadlineMisses != 0 {
		t.Fatalf("misses %d", rep.Stats.DeadlineMisses)
	}
	var rNear, rMid, rFar vtime.Duration
	for _, tr := range rep.Tasks {
		switch tr.Name {
		case "near":
			rNear = tr.MaxResponse
		case "mid":
			rMid = tr.MaxResponse
		case "far":
			rFar = tr.MaxResponse
		}
	}
	if !(rNear < rMid && rMid < rFar) {
		t.Fatalf("EDF order violated: near=%s mid=%s far=%s", rNear, rMid, rFar)
	}
}

func TestEDFIsDeadlineOptimalWhereRMFails(t *testing.T) {
	// Classic LL73 case: non-harmonic periods at U ≈ 0.97 — feasible
	// under EDF (U ≤ 1), infeasible under RM (above the bound, and the
	// exact analysis gives R2 = 8ms > D2 = 7ms).
	build := func() []*heug.Task {
		t1 := heug.NewTask("t1", heug.PeriodicEvery(5*ms)).
			WithDeadline(5*ms).
			Code("e", heug.CodeEU{Node: 0, WCET: 2 * ms}).MustBuild()
		t2 := heug.NewTask("t2", heug.PeriodicEvery(7*ms)).
			WithDeadline(7*ms).
			Code("e", heug.CodeEU{Node: 0, WCET: 4 * ms}).MustBuild()
		return []*heug.Task{t1, t2}
	}
	run := func(policy dispatcher.Scheduler) int {
		sys := core.NewSystem(core.Config{Nodes: 1, Seed: 3})
		app := sys.NewApp("a", policy, nil)
		for _, task := range build() {
			app.MustAddTask(task)
		}
		app.Seal()
		_ = sys.StartPeriodic("t1")
		_ = sys.StartPeriodic("t2")
		rep := sys.Run(100 * ms)
		return rep.Stats.DeadlineMisses
	}
	if m := run(sched.NewEDF(0)); m != 0 {
		t.Fatalf("EDF at U=1.0 missed %d deadlines", m)
	}
	if m := run(sched.NewRM()); m == 0 {
		t.Fatal("RM at U=1.0 with these harmonics should miss (no misses seen)")
	}
}

// inversionScenario runs the canonical priority-inversion workload:
// L (low, long critical section on R), M (medium, long pure compute),
// H (high, needs R). Returns H's max response time and the system.
func inversionScenario(t *testing.T, policy dispatcher.ResourcePolicy) (vtime.Duration, *core.System) {
	t.Helper()
	low := heug.NewTask("low", heug.SporadicEvery(200*ms)).
		WithDeadline(100*ms).
		Code("cs", heug.CodeEU{Node: 0, WCET: 10 * ms,
			Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Exclusive}}}).
		MustBuild()
	mid := heug.NewTask("mid", heug.SporadicEvery(200*ms)).
		WithDeadline(60*ms).
		Code("work", heug.CodeEU{Node: 0, WCET: 20 * ms}).
		MustBuild()
	high := heug.NewTask("high", heug.SporadicEvery(200*ms)).
		WithDeadline(30*ms).
		Code("use", heug.CodeEU{Node: 0, WCET: 1 * ms,
			Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Exclusive}}}).
		MustBuild()
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 3})
	app := sys.NewApp("inv", sched.NewDM(), policy)
	app.MustAddTask(low)
	app.MustAddTask(mid)
	app.MustAddTask(high)
	app.Seal()
	sys.ActivateAt("low", 0)
	sys.ActivateAt("high", vtime.Time(1*ms))
	sys.ActivateAt("mid", vtime.Time(2*ms))
	rep := sys.Run(150 * ms)
	var rHigh vtime.Duration
	for _, tr := range rep.Tasks {
		if tr.Name == "high" {
			rHigh = tr.MaxResponse
		}
	}
	return rHigh, sys
}

func TestUnboundedInversionWithoutProtocol(t *testing.T) {
	rHigh, _ := inversionScenario(t, nil)
	// M (20ms) preempts L while H waits on R: H suffers M's whole run.
	if rHigh < 20*ms {
		t.Fatalf("expected unbounded inversion without protocol, H responded in %s", rHigh)
	}
}

func TestPCPBoundsInversion(t *testing.T) {
	rHigh, sys := inversionScenario(t, sched.NewPCP())
	// H waits at most L's critical section (10ms) + own 1ms + slack.
	if rHigh > 12*ms {
		t.Fatalf("PCP failed to bound inversion: H responded in %s", rHigh)
	}
	// PCP works through priority inheritance: changes must be visible.
	if n := sys.Log().CountKind(monitor.KindPriorityChange); n == 0 {
		t.Error("PCP produced no priority changes")
	}
}

func TestSRPBoundsInversion(t *testing.T) {
	rHigh, sys := inversionScenario(t, sched.NewSRP())
	if rHigh > 12*ms {
		t.Fatalf("SRP failed to bound inversion: H responded in %s", rHigh)
	}
	// SRP needs no priority manipulation at all.
	if n := sys.Log().CountKind(monitor.KindPriorityChange); n != 0 {
		t.Errorf("SRP changed priorities %d times, want 0", n)
	}
}

func TestSRPLevelsAndCeilings(t *testing.T) {
	a := heug.NewTask("a", heug.SporadicEvery(50*ms)).
		WithDeadline(10*ms).
		Code("e", heug.CodeEU{Node: 0, WCET: us,
			Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Exclusive}}}).MustBuild()
	b := heug.NewTask("b", heug.SporadicEvery(50*ms)).
		WithDeadline(40*ms).
		Code("e", heug.CodeEU{Node: 0, WCET: us,
			Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Exclusive}}}).MustBuild()
	s := sched.NewSRP()
	s.Init([]*heug.Task{a, b}, nil)
	if s.Level("a") <= s.Level("b") {
		t.Fatal("shorter deadline must have higher preemption level")
	}
	if s.Ceiling(0, "R") != s.Level("a") {
		t.Fatalf("ceiling(R) = %d, want %d (max user level)", s.Ceiling(0, "R"), s.Level("a"))
	}
	if s.SystemCeiling(0) != 0 {
		t.Fatal("system ceiling must start at 0")
	}
}

func TestPCPCeilings(t *testing.T) {
	a := heug.NewTask("a", heug.SporadicEvery(50*ms)).
		WithDeadline(10*ms).
		Code("e", heug.CodeEU{Node: 0, WCET: us, Prio: 9,
			Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Exclusive}}}).MustBuild()
	b := heug.NewTask("b", heug.SporadicEvery(50*ms)).
		WithDeadline(40*ms).
		Code("e", heug.CodeEU{Node: 0, WCET: us, Prio: 3,
			Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Exclusive}}}).MustBuild()
	p := sched.NewPCP()
	p.Init([]*heug.Task{a, b}, nil)
	if p.Ceiling(0, "R") != 9 {
		t.Fatalf("PCP ceiling = %d, want 9", p.Ceiling(0, "R"))
	}
}

func TestSpringAdmissionRejectsOverload(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 3})
	spring := sched.NewSpring(15*us, 50*us, sys.Engine().Now)
	app := sys.NewApp("plan", spring, nil)
	mk := func(name string, c, d vtime.Duration) *heug.Task {
		return heug.NewTask(name, heug.AperiodicLaw()).
			WithDeadline(d).
			Code("e", heug.CodeEU{Node: 0, WCET: c}).
			MustBuild()
	}
	app.MustAddTask(mk("j1", 5*ms, 10*ms))
	app.MustAddTask(mk("j2", 5*ms, 11*ms))
	app.MustAddTask(mk("j3", 5*ms, 12*ms)) // cannot fit: 15ms work by 12ms
	app.Seal()
	sys.ActivateAt("j1", 0)
	sys.ActivateAt("j2", 0)
	sys.ActivateAt("j3", 0)
	rep := sys.Run(100 * ms)
	if rep.Stats.Rejections != 1 {
		t.Fatalf("rejections %d, want 1 (j3 unguaranteeable)", rep.Stats.Rejections)
	}
	if rep.Stats.DeadlineMisses != 0 {
		t.Fatalf("admitted jobs missed: %d — guarantee broken", rep.Stats.DeadlineMisses)
	}
	if rep.Stats.Completions != 2 {
		t.Fatalf("completions %d, want 2", rep.Stats.Completions)
	}
}

func TestSpringGuaranteedJobsAllComplete(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 3})
	spring := sched.NewSpring(15*us, 50*us, sys.Engine().Now)
	app := sys.NewApp("plan", spring, nil)
	for i := 0; i < 5; i++ {
		name := string(rune('a' + i))
		app.MustAddTask(heug.NewTask(name, heug.AperiodicLaw()).
			WithDeadline(vtime.Duration(20+i*10)*ms).
			Code("e", heug.CodeEU{Node: 0, WCET: 3 * ms}).
			MustBuild())
		sys.ActivateAt(name, vtime.Time(vtime.Duration(i)*ms))
	}
	app.Seal()
	rep := sys.Run(200 * ms)
	admitted := rep.Stats.Activations
	if rep.Stats.Completions != admitted {
		t.Fatalf("admitted %d but completed %d", admitted, rep.Stats.Completions)
	}
	if rep.Stats.DeadlineMisses != 0 {
		t.Fatalf("guaranteed jobs missed %d deadlines", rep.Stats.DeadlineMisses)
	}
}

func TestBestEffortCohabitation(t *testing.T) {
	// A guaranteed EDF app cohabits with a best-effort app (§2.2.1's
	// second cohabitation option): the best-effort load must not
	// disturb the guaranteed app's deadlines.
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 3})
	guaranteed := sys.NewApp("guaranteed", sched.NewEDF(10*us), nil)
	guaranteed.MustAddTask(heug.NewTask("critical", heug.PeriodicEvery(10*ms)).
		WithDeadline(10*ms).
		Code("e", heug.CodeEU{Node: 0, WCET: 4 * ms}).
		MustBuild())
	guaranteed.Seal()

	besteffort := sys.NewApp("bg", sched.NewBestEffort(0), nil)
	besteffort.MustAddTask(heug.NewTask("noise", heug.PeriodicEvery(5*ms)).
		Code("e", heug.CodeEU{Node: 0, WCET: 4 * ms}).
		MustBuild())
	besteffort.Seal()

	_ = sys.StartPeriodic("critical")
	_ = sys.StartPeriodic("noise")
	rep := sys.Run(200 * ms)
	for _, tr := range rep.Tasks {
		if tr.Name == "critical" && tr.Misses != 0 {
			t.Fatalf("guaranteed app missed %d deadlines under best-effort load", tr.Misses)
		}
		if tr.Name == "noise" && tr.Completions == 0 {
			t.Fatal("best-effort app completely starved (should get slack)")
		}
	}
}
