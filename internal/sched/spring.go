package sched

import (
	"sort"

	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/vtime"
)

// Spring is a planning-based policy in the style of the Spring kernel's
// guarantee algorithm [RSS90], one of the paper's three scheduler
// families (§1: "planning-based scheduling policies"). Each activation
// request passes a dynamic guarantee test: the scheduler tentatively
// extends its plan — a serialised schedule of admitted, unfinished jobs
// ordered by the heuristic function H — and admits the request only if
// every job in the extended plan still meets its deadline. Admitted
// jobs' start times are enforced through the dispatcher primitive's
// earliest attribute, which is exactly why §3.1.2 makes earliest
// dynamically assignable ("These two kinds of definitions serve ... at
// implementing static and dynamic planning-based scheduling
// algorithms").
//
// The heuristic H here is minimum-deadline-first, the strongest simple
// heuristic evaluated in [RSS90]. Overhead is charged per notification
// like any scheduler (Cost), and the per-job cost estimate includes the
// dispatcher constants so the plan is honest about middleware overhead.
type Spring struct {
	cost     vtime.Duration
	overhead vtime.Duration // per-job dispatching overhead folded into the plan
	now      func() vtime.Time

	jobs []*springJob // admitted, unfinished
}

type springJob struct {
	task     string
	deadline vtime.Time
	work     vtime.Duration
	started  bool
	threads  []*dispatcher.Thread
}

// NewSpring returns a planning policy. now must report current virtual
// time (wire it to the engine); overhead is added to each job's planned
// work to account for dispatching costs.
func NewSpring(cost, overhead vtime.Duration, now func() vtime.Time) *Spring {
	return &Spring{cost: cost, overhead: overhead, now: now}
}

// Name implements dispatcher.Scheduler.
func (*Spring) Name() string { return "Spring" }

// Cost implements dispatcher.Scheduler.
func (s *Spring) Cost() vtime.Duration { return s.cost }

// Wants implements dispatcher.Scheduler.
func (*Spring) Wants(k dispatcher.NotifKind) bool {
	return k == dispatcher.NotifAtv || k == dispatcher.NotifTrm
}

// Init implements dispatcher.Scheduler: plan order is enforced through
// earliest times; priorities are uniform.
func (*Spring) Init(tasks []*heug.Task) {
	for _, t := range tasks {
		for _, e := range t.EUs {
			if e.Code != nil {
				e.Code.Prio = BaseGuaranteed
			}
		}
	}
}

// Admit implements dispatcher.Admitter: the Spring guarantee test. The
// candidate plan is every unfinished job plus the request, ordered by H
// (earliest deadline); the request is guaranteed iff the serialised
// plan misses no deadline. An admitted job is committed to the plan
// *synchronously*, before the admission returns — the reservation must
// be visible to the very next admission test even though the Atv
// notification that binds threads to it is processed later (and costs
// scheduler CPU).
func (s *Spring) Admit(task *heug.Task, at vtime.Time) bool {
	cand := &springJob{
		task:     task.Name,
		deadline: at.Add(task.Deadline),
		work:     task.TotalWCET() + s.overhead,
	}
	s.prune()
	plan := make([]*springJob, 0, len(s.jobs)+1)
	plan = append(plan, s.jobs...)
	plan = append(plan, cand)
	if !s.feasible(plan, at) {
		return false
	}
	s.jobs = append(s.jobs, cand)
	return true
}

// feasible serialises the plan in H order from time at and checks every
// deadline.
func (s *Spring) feasible(plan []*springJob, at vtime.Time) bool {
	sorted := make([]*springJob, len(plan))
	copy(sorted, plan)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].deadline < sorted[j].deadline })
	t := at
	for _, j := range sorted {
		t = t.Add(j.work)
		if t > j.deadline {
			return false
		}
	}
	return true
}

// prune drops completed or orphaned jobs from the plan.
func (s *Spring) prune() {
	keep := s.jobs[:0]
	for _, j := range s.jobs {
		done := len(j.threads) > 0
		for _, th := range j.threads {
			if !th.Finished() && !th.Orphaned() {
				done = false
				break
			}
		}
		if !done {
			keep = append(keep, j)
		}
	}
	s.jobs = keep
}

// Handle implements dispatcher.Scheduler: admitted activations are
// inserted into the plan and the plan's serialisation is re-imposed via
// earliest start times.
func (s *Spring) Handle(n dispatcher.Notification, prim dispatcher.Primitive) {
	switch n.Kind {
	case dispatcher.NotifAtv:
		inst := n.Thread.Instance()
		job := s.findJob(inst, n.Thread.TaskName(), n.Thread.AbsDeadline())
		if job == nil {
			// Activation without a prior Admit (e.g. admission hook not
			// wired): register the job now.
			job = &springJob{
				task:     n.Thread.TaskName(),
				deadline: n.Thread.AbsDeadline(),
				work:     inst.TR.Task.TotalWCET() + s.overhead,
			}
			s.jobs = append(s.jobs, job)
		}
		job.threads = append(job.threads, n.Thread)
	case dispatcher.NotifTrm:
		s.prune()
	}
	s.replan(prim)
}

// findJob locates the plan entry for an instance: first by bound
// threads, then by the (task, deadline) reservation Admit committed.
func (s *Spring) findJob(inst *dispatcher.Instance, task string, deadline vtime.Time) *springJob {
	for _, j := range s.jobs {
		for _, th := range j.threads {
			if th.Instance() == inst {
				return j
			}
		}
	}
	for _, j := range s.jobs {
		if len(j.threads) == 0 && j.task == task && j.deadline == deadline {
			return j
		}
	}
	return nil
}

// replan recomputes planned start times in H order and pushes them to
// the not-yet-started jobs through the primitive.
func (s *Spring) replan(prim dispatcher.Primitive) {
	s.prune()
	sorted := make([]*springJob, len(s.jobs))
	copy(sorted, s.jobs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].deadline < sorted[j].deadline })
	t := s.now()
	for _, j := range sorted {
		if anyStarted(j.threads) {
			j.started = true
		}
		if !j.started {
			for _, th := range j.threads {
				if !th.Finished() && !th.Orphaned() && th.Earliest() < t {
					prim.SetEarliest(th, t)
				}
			}
		}
		// Conservative: reserve a job's full work even once started.
		t = t.Add(j.work)
	}
}

func anyStarted(threads []*dispatcher.Thread) bool {
	for _, th := range threads {
		if th.Started() || th.Finished() {
			return true
		}
	}
	return false
}
