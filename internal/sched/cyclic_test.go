package sched_test

import (
	"strings"
	"testing"

	"hades/internal/core"
	"hades/internal/heug"
	"hades/internal/sched"
	"hades/internal/vtime"
)

func cyclicTask(name string, period, wcet vtime.Duration, offset vtime.Duration) *heug.Task {
	return heug.NewTask(name, heug.Arrival{Kind: heug.Periodic, Period: period, Offset: offset}).
		WithDeadline(period).
		Code("eu", heug.CodeEU{Node: 0, WCET: wcet}).
		MustBuild()
}

func TestCyclicPlanHyperperiod(t *testing.T) {
	c := sched.NewCyclic(5 * us)
	c.Init([]*heug.Task{
		cyclicTask("a", 10*ms, 2*ms, 0),
		cyclicTask("b", 20*ms, 4*ms, 0),
		cyclicTask("c", 40*ms, 6*ms, 0),
	})
	if err := c.PlanError(); err != nil {
		t.Fatal(err)
	}
	if c.Hyperperiod() != 40*ms {
		t.Fatalf("hyperperiod %s, want 40ms", c.Hyperperiod())
	}
}

func TestCyclicDetectsInfeasiblePlan(t *testing.T) {
	c := sched.NewCyclic(0)
	c.Init([]*heug.Task{
		cyclicTask("a", 10*ms, 6*ms, 0),
		cyclicTask("b", 10*ms, 6*ms, 0), // 12ms of work per 10ms frame
	})
	if c.PlanError() == nil {
		t.Fatal("overloaded plan accepted")
	}
	if !strings.Contains(c.PlanError().Error(), "misses its deadline") {
		t.Fatalf("unexpected error: %v", c.PlanError())
	}
}

func TestCyclicRejectsNonPeriodic(t *testing.T) {
	c := sched.NewCyclic(0)
	c.Init([]*heug.Task{
		heug.NewTask("s", heug.SporadicEvery(10*ms)).
			WithDeadline(10*ms).
			Code("eu", heug.CodeEU{Node: 0, WCET: ms}).
			MustBuild(),
	})
	if c.PlanError() == nil {
		t.Fatal("sporadic task accepted by cyclic planner")
	}
}

func TestCyclicRejectsMultiEU(t *testing.T) {
	c := sched.NewCyclic(0)
	task := heug.NewTask("m", heug.PeriodicEvery(10*ms)).
		WithDeadline(10*ms).
		Code("a", heug.CodeEU{Node: 0, WCET: ms}).
		Code("b", heug.CodeEU{Node: 0, WCET: ms}).
		Precede("a", "b").
		MustBuild()
	c.Init([]*heug.Task{task})
	if c.PlanError() == nil {
		t.Fatal("multi-EU task accepted by cyclic planner")
	}
}

func TestCyclicExecutionFollowsPlan(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
	cyc := sched.NewCyclic(5 * us)
	app := sys.NewApp("cyclic", cyc, nil)
	app.MustAddTask(cyclicTask("a", 10*ms, 2*ms, 0))
	app.MustAddTask(cyclicTask("b", 20*ms, 4*ms, 0))
	app.Seal()
	if err := cyc.PlanError(); err != nil {
		t.Fatal(err)
	}
	if err := sys.StartPeriodic("a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.StartPeriodic("b"); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(400 * ms)
	if rep.Stats.DeadlineMisses != 0 {
		t.Fatalf("cyclic plan missed %d deadlines", rep.Stats.DeadlineMisses)
	}
	// Plan determinism: responses repeat every hyperperiod. The only
	// admissible jitter is the scheduler's own notification processing
	// (frames with one Atv vs two differ by Cost), so max − avg stays
	// within a couple of notification costs.
	for _, tr := range rep.Tasks {
		if jitter := tr.MaxResponse - tr.AvgResponse; jitter > 3*(5*us) {
			t.Errorf("task %s: response jitter %s under a static plan (avg %s, max %s)",
				tr.Name, jitter, tr.AvgResponse, tr.MaxResponse)
		}
	}
}

func TestCyclicWithOffsets(t *testing.T) {
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1})
	cyc := sched.NewCyclic(0)
	app := sys.NewApp("cyclic", cyc, nil)
	app.MustAddTask(cyclicTask("a", 10*ms, 3*ms, 0))
	app.MustAddTask(cyclicTask("b", 10*ms, 3*ms, 5*ms))
	app.Seal()
	if err := cyc.PlanError(); err != nil {
		t.Fatal(err)
	}
	_ = sys.StartPeriodic("a")
	_ = sys.StartPeriodic("b")
	rep := sys.Run(200 * ms)
	if rep.Stats.DeadlineMisses != 0 {
		t.Fatalf("offset plan missed %d", rep.Stats.DeadlineMisses)
	}
}
