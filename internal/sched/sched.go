// Package sched provides the application-domain-dependent half of HADES:
// scheduling policies and resource-access protocols, all built on the
// dispatcher's cooperation interface of §3.2.2 (notification FIFO +
// attribute-change primitive).
//
// Implemented policies, matching the paper's §3.3 inventory:
//
//   - RM and DM: static priority assignment at Init [LL73];
//   - EDF: dynamic priorities driven by Atv/Trm notifications,
//     reproducing Figure 2's cooperation protocol;
//   - FIFO/best-effort: a fixed low band for cohabitation (§2.2.1);
//   - Spring-style planning (§1, [RSS90]): a dynamic guarantee test at
//     each activation plus plan-driven earliest start times;
//
// and the anti-priority-inversion protocols of footnote 2:
//
//   - SRP (Stack Resource Policy [Bak91]);
//   - PCP-style dynamic priority ceilings with inheritance [CL90].
package sched

import (
	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/vtime"
)

// Base priorities for application bands. Guaranteed applications sit in
// [BaseGuaranteed, BaseGuaranteed+band); best-effort ones below them.
const (
	// BaseGuaranteed is the floor of the guaranteed-application band.
	BaseGuaranteed = 1000
	// BaseBestEffort is the floor of the best-effort band.
	BaseBestEffort = 10
)

// assignStaticByRank sets every Code_EU of each task to a priority
// derived from the task's rank under less (rank 0 = highest priority).
func assignStaticByRank(tasks []*heug.Task, base int, less func(a, b *heug.Task) bool) {
	order := make([]*heug.Task, len(tasks))
	copy(order, tasks)
	// Insertion sort: deterministic, stable, tiny n.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && less(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for rank, t := range order {
		prio := base + len(order) - rank
		for _, e := range t.EUs {
			if e.Code != nil {
				e.Code.Prio = prio
			}
		}
	}
}

// RM is the Rate Monotonic policy [LL73]: static priorities ordered by
// period (shorter period → higher priority), assigned once at Init. It
// needs no runtime notifications, so its scheduling cost is zero — the
// §5.3 overhead comparison between static and dynamic policies rests on
// exactly this difference.
type RM struct{}

// NewRM returns the Rate Monotonic policy.
func NewRM() *RM { return &RM{} }

// Name implements dispatcher.Scheduler.
func (*RM) Name() string { return "RM" }

// Cost implements dispatcher.Scheduler.
func (*RM) Cost() vtime.Duration { return 0 }

// Wants implements dispatcher.Scheduler: RM is fully static.
func (*RM) Wants(dispatcher.NotifKind) bool { return false }

// Init implements dispatcher.Scheduler.
func (*RM) Init(tasks []*heug.Task) {
	assignStaticByRank(tasks, BaseGuaranteed, func(a, b *heug.Task) bool {
		return a.Arrival.Period < b.Arrival.Period
	})
}

// Handle implements dispatcher.Scheduler.
func (*RM) Handle(dispatcher.Notification, dispatcher.Primitive) {}

// DM is the Deadline Monotonic policy: static priorities ordered by
// relative deadline (shorter deadline → higher priority).
type DM struct{}

// NewDM returns the Deadline Monotonic policy.
func NewDM() *DM { return &DM{} }

// Name implements dispatcher.Scheduler.
func (*DM) Name() string { return "DM" }

// Cost implements dispatcher.Scheduler.
func (*DM) Cost() vtime.Duration { return 0 }

// Wants implements dispatcher.Scheduler.
func (*DM) Wants(dispatcher.NotifKind) bool { return false }

// Init implements dispatcher.Scheduler.
func (*DM) Init(tasks []*heug.Task) {
	assignStaticByRank(tasks, BaseGuaranteed, func(a, b *heug.Task) bool {
		return a.Deadline < b.Deadline
	})
}

// Handle implements dispatcher.Scheduler.
func (*DM) Handle(dispatcher.Notification, dispatcher.Primitive) {}

// BestEffort runs every task at one fixed low priority with no
// guarantees: the cohabitation partner of §2.2.1's second option (one
// scheduler with a feasibility test plus any number of best-effort
// schedulers).
type BestEffort struct {
	prio int
}

// NewBestEffort returns a best-effort policy at the given priority
// within the best-effort band (0 selects the band floor).
func NewBestEffort(prio int) *BestEffort {
	if prio <= 0 {
		prio = BaseBestEffort
	}
	return &BestEffort{prio: prio}
}

// Name implements dispatcher.Scheduler.
func (*BestEffort) Name() string { return "best-effort" }

// Cost implements dispatcher.Scheduler.
func (*BestEffort) Cost() vtime.Duration { return 0 }

// Wants implements dispatcher.Scheduler.
func (*BestEffort) Wants(dispatcher.NotifKind) bool { return false }

// Init implements dispatcher.Scheduler.
func (b *BestEffort) Init(tasks []*heug.Task) {
	for _, t := range tasks {
		for _, e := range t.EUs {
			if e.Code != nil {
				e.Code.Prio = b.prio
			}
		}
	}
}

// Handle implements dispatcher.Scheduler.
func (*BestEffort) Handle(dispatcher.Notification, dispatcher.Primitive) {}
