package sched

import (
	"sort"

	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/vtime"
)

// EDF is the Earliest Deadline First policy [LL73], built exactly as
// Figure 2 prescribes: the scheduler consumes Atv and Trm notifications
// from the dispatcher's FIFO and reorders live threads' priorities with
// the dispatcher primitive so that the thread with the earliest absolute
// deadline always has the highest priority of the application band.
type EDF struct {
	cost vtime.Duration
	live map[int][]*dispatcher.Thread // per node, maintained sorted
}

// NewEDF returns an EDF policy whose per-notification processing cost is
// cost (C_sched in the §5.3 analysis).
func NewEDF(cost vtime.Duration) *EDF {
	return &EDF{cost: cost, live: make(map[int][]*dispatcher.Thread)}
}

// Name implements dispatcher.Scheduler.
func (*EDF) Name() string { return "EDF" }

// Cost implements dispatcher.Scheduler.
func (e *EDF) Cost() vtime.Duration { return e.cost }

// Wants implements dispatcher.Scheduler: EDF reacts to activations and
// terminations (Figure 2 shows it ignoring Rac/Rre).
func (*EDF) Wants(k dispatcher.NotifKind) bool {
	return k == dispatcher.NotifAtv || k == dispatcher.NotifTrm
}

// Init implements dispatcher.Scheduler: all units start at the band
// floor; ordering is established dynamically.
func (*EDF) Init(tasks []*heug.Task) {
	for _, t := range tasks {
		for _, e := range t.EUs {
			if e.Code != nil {
				e.Code.Prio = BaseGuaranteed
			}
		}
	}
}

// Handle implements dispatcher.Scheduler.
func (e *EDF) Handle(n dispatcher.Notification, prim dispatcher.Primitive) {
	node := n.Thread.Node()
	switch n.Kind {
	case dispatcher.NotifAtv:
		e.live[node] = append(e.live[node], n.Thread)
	case dispatcher.NotifTrm:
		e.remove(node, n.Thread)
	default:
		return
	}
	e.reorder(node, prim)
}

func (e *EDF) remove(node int, th *dispatcher.Thread) {
	l := e.live[node]
	for i, t := range l {
		if t == th {
			e.live[node] = append(l[:i], l[i+1:]...)
			return
		}
	}
}

// reorder reassigns priorities on one node: earliest deadline highest.
// Finished or orphaned threads are pruned first (orphans never emit Trm).
func (e *EDF) reorder(node int, prim dispatcher.Primitive) {
	l := e.live[node][:0]
	for _, t := range e.live[node] {
		if !t.Finished() && !t.Orphaned() {
			l = append(l, t)
		}
	}
	e.live[node] = l
	sort.SliceStable(l, func(i, j int) bool { return l[i].AbsDeadline() < l[j].AbsDeadline() })
	for rank, t := range l {
		prio := BaseGuaranteed + len(l) - rank
		if prio != t.Priority() {
			prim.SetPriority(t, prio)
		}
	}
}

// Live returns the number of live threads EDF tracks on a node (test
// hook).
func (e *EDF) Live(node int) int { return len(e.live[node]) }
