package sched

import (
	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/vtime"
)

// SRP implements Baker's Stack Resource Policy [Bak91], one of the two
// anti-priority-inversion protocols the paper designed on the HADES task
// model (§3.3). Each task has a static preemption level π, inversely
// ordered with its relative deadline; each resource a ceiling — the
// highest π among its users; each node a system ceiling — the maximum
// ceiling over currently held resources. A job may start only when its
// preemption level strictly exceeds the system ceiling, which guarantees
// that once started it never blocks, bounds blocking to a single outer
// critical section, and (unlike PCP) requires no priority manipulation
// at all: the Rac/Rre notification traffic is enough.
type SRP struct {
	levels   map[string]int         // task name → preemption level π
	ceilings map[srpKey]int         // (node, resource) → ceiling
	stack    map[int][]srpStackItem // node → held-resource stack
}

type srpKey struct {
	node     int
	resource string
}

type srpStackItem struct {
	th      *dispatcher.Thread
	ceiling int
}

// NewSRP returns a fresh Stack Resource Policy.
func NewSRP() *SRP {
	return &SRP{
		levels:   make(map[string]int),
		ceilings: make(map[srpKey]int),
		stack:    make(map[int][]srpStackItem),
	}
}

// Name implements dispatcher.ResourcePolicy.
func (*SRP) Name() string { return "SRP" }

// Init implements dispatcher.ResourcePolicy: preemption levels are
// assigned by relative deadline (shorter deadline → higher level), and
// resource ceilings follow from static use sets — both computable
// offline thanks to the HEUG model's declared resource requests (§3.3).
func (s *SRP) Init(tasks []*heug.Task, _ dispatcher.Primitive) {
	order := make([]*heug.Task, len(tasks))
	copy(order, tasks)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && deadlineOf(order[j]) < deadlineOf(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for rank, t := range order {
		s.levels[t.Name] = len(order) - rank // shortest deadline → highest π
	}
	for _, t := range tasks {
		pi := s.levels[t.Name]
		for _, e := range t.EUs {
			if e.Code == nil {
				continue
			}
			for _, r := range e.Code.Resources {
				k := srpKey{e.Code.Node, r.Resource}
				if pi > s.ceilings[k] {
					s.ceilings[k] = pi
				}
			}
		}
	}
}

func deadlineOf(t *heug.Task) vtime.Duration {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return vtime.Forever
}

// Level returns a task's preemption level (test hook).
func (s *SRP) Level(task string) int { return s.levels[task] }

// Ceiling returns a resource's ceiling on a node (test hook).
func (s *SRP) Ceiling(node int, resource string) int {
	return s.ceilings[srpKey{node, resource}]
}

// SystemCeiling returns the current system ceiling of a node.
func (s *SRP) SystemCeiling(node int) int {
	max := 0
	for _, it := range s.stack[node] {
		if it.ceiling > max {
			max = it.ceiling
		}
	}
	return max
}

// CanStart implements dispatcher.ResourcePolicy: the SRP preemption
// test. A job whose preemption level does not exceed the node's system
// ceiling may not start — unless it is itself a holder contributing the
// ceiling (cannot happen with all-at-start acquisition, kept for
// safety).
func (s *SRP) CanStart(th *dispatcher.Thread) bool {
	pi := s.levels[th.TaskName()]
	node := th.Node()
	max := 0
	for _, it := range s.stack[node] {
		if it.th == th {
			continue
		}
		if it.ceiling > max {
			max = it.ceiling
		}
	}
	return pi > max
}

// OnGrant implements dispatcher.ResourcePolicy: push the ceilings of
// the acquired resources.
func (s *SRP) OnGrant(th *dispatcher.Thread) {
	node := th.Node()
	for _, r := range th.HeldResources() {
		s.stack[node] = append(s.stack[node], srpStackItem{th: th, ceiling: s.ceilings[srpKey{node, r}]})
	}
}

// OnRelease implements dispatcher.ResourcePolicy: pop th's entries.
func (s *SRP) OnRelease(th *dispatcher.Thread) {
	node := th.Node()
	kept := s.stack[node][:0]
	for _, it := range s.stack[node] {
		if it.th != th {
			kept = append(kept, it)
		}
	}
	s.stack[node] = kept
}

// OnBlocked implements dispatcher.ResourcePolicy: SRP needs no
// inheritance — a blocked job simply has not started, and everything
// that could block it runs at a ceiling that prevents the inversion.
func (*SRP) OnBlocked(*dispatcher.Thread, []*dispatcher.Thread) {}
