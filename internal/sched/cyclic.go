package sched

import (
	"fmt"
	"sort"

	"hades/internal/dispatcher"
	"hades/internal/heug"
	"hades/internal/vtime"
)

// Cyclic is a static planning-based scheduler in the tradition of
// global cyclic scheduling [Agn91] and static multiprocessor planning
// [Xu93] — the third scheduler family of §1. The whole schedule is
// computed offline: every job release inside one hyperperiod gets a
// fixed start slot (EDF-ordered serialisation), and at run time the
// scheduler only imposes those slots through the dispatcher primitive's
// *earliest start time* attribute — the use case §3.1.2 names for
// statically assigned earliest values.
//
// Restrictions (documented, checked at Init): periodic tasks only, one
// Code_EU per task, all on one node — the classic cyclic-frame model.
type Cyclic struct {
	cost vtime.Duration

	hyper   vtime.Duration
	starts  map[string][]vtime.Duration // task → planned start offset per release
	offsets map[string][]vtime.Duration // task → release offsets in the hyperperiod
	planErr error
}

// maxHyperperiod bounds plan size for non-harmonic period sets.
const maxHyperperiod = 10 * vtime.Second

// NewCyclic returns a cyclic executive with the given per-notification
// cost.
func NewCyclic(cost vtime.Duration) *Cyclic {
	return &Cyclic{
		cost:    cost,
		starts:  make(map[string][]vtime.Duration),
		offsets: make(map[string][]vtime.Duration),
	}
}

// Name implements dispatcher.Scheduler.
func (*Cyclic) Name() string { return "cyclic" }

// Cost implements dispatcher.Scheduler.
func (c *Cyclic) Cost() vtime.Duration { return c.cost }

// Wants implements dispatcher.Scheduler: the table is imposed at
// activation.
func (*Cyclic) Wants(k dispatcher.NotifKind) bool { return k == dispatcher.NotifAtv }

// PlanError returns the planning failure, if any. Callers must check it
// after App.Seal: a cyclic executive with no valid table guarantees
// nothing.
func (c *Cyclic) PlanError() error { return c.planErr }

// Hyperperiod returns the plan's major cycle length (0 if unplanned).
func (c *Cyclic) Hyperperiod() vtime.Duration { return c.hyper }

// Init implements dispatcher.Scheduler: it builds the offline table.
func (c *Cyclic) Init(tasks []*heug.Task) {
	for _, t := range tasks {
		for _, e := range t.EUs {
			if e.Code != nil {
				e.Code.Prio = BaseGuaranteed
			}
		}
	}
	c.planErr = c.plan(tasks)
}

type cyclicJob struct {
	task     string
	release  vtime.Duration
	deadline vtime.Duration
	work     vtime.Duration
	index    int // release index within the hyperperiod
}

// plan builds the EDF-ordered serialised schedule of one hyperperiod.
func (c *Cyclic) plan(tasks []*heug.Task) error {
	if len(tasks) == 0 {
		return nil
	}
	hyper := vtime.Duration(1)
	for _, t := range tasks {
		if t.Arrival.Kind != heug.Periodic {
			return fmt.Errorf("cyclic: task %q is not periodic", t.Name)
		}
		if len(t.EUs) != 1 || t.EUs[0].Code == nil {
			return fmt.Errorf("cyclic: task %q must have exactly one Code_EU", t.Name)
		}
		if t.EUs[0].Code.Node != tasks[0].EUs[0].Code.Node {
			return fmt.Errorf("cyclic: tasks span nodes; the cyclic frame is single-node")
		}
		hyper = lcm(hyper, t.Arrival.Period)
		if hyper > maxHyperperiod {
			return fmt.Errorf("cyclic: hyperperiod exceeds %s", maxHyperperiod)
		}
	}
	c.hyper = hyper

	var jobs []*cyclicJob
	for _, t := range tasks {
		d := t.Deadline
		if d == 0 {
			d = t.Arrival.Period
		}
		idx := 0
		for rel := t.Arrival.Offset; rel < hyper; rel += t.Arrival.Period {
			jobs = append(jobs, &cyclicJob{
				task:     t.Name,
				release:  rel,
				deadline: rel + d,
				work:     t.EUs[0].Code.WCET,
				index:    idx,
			})
			idx++
		}
		c.offsets[t.Name] = nil
		c.starts[t.Name] = nil
	}
	// EDF-order the jobs, then serialise respecting releases.
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].deadline != jobs[j].deadline {
			return jobs[i].deadline < jobs[j].deadline
		}
		return jobs[i].release < jobs[j].release
	})
	var tm vtime.Duration
	starts := make(map[string][]vtime.Duration)
	for _, j := range jobs {
		if j.release > tm {
			tm = j.release
		}
		start := tm
		tm += j.work
		if tm > j.deadline {
			return fmt.Errorf("cyclic: job %s@%s misses its deadline in the plan (ends %s > %s)",
				j.task, j.release, tm, j.deadline)
		}
		starts[j.task] = append(starts[j.task], start)
		c.offsets[j.task] = append(c.offsets[j.task], j.release)
	}
	// Per task, order slots by release index.
	for task, offs := range c.offsets {
		idx := make([]int, len(offs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return offs[idx[a]] < offs[idx[b]] })
		ordOff := make([]vtime.Duration, len(offs))
		ordSt := make([]vtime.Duration, len(offs))
		for i, k := range idx {
			ordOff[i] = offs[k]
			ordSt[i] = starts[task][k]
		}
		c.offsets[task] = ordOff
		c.starts[task] = ordSt
	}
	return nil
}

// Handle implements dispatcher.Scheduler: each activation is pinned to
// its plan slot via the earliest attribute.
func (c *Cyclic) Handle(n dispatcher.Notification, prim dispatcher.Primitive) {
	if n.Kind != dispatcher.NotifAtv || c.planErr != nil || c.hyper == 0 {
		return
	}
	task := n.Thread.TaskName()
	offsets := c.offsets[task]
	if len(offsets) == 0 {
		return
	}
	inst := n.Thread.Instance()
	rel := vtime.Duration(inst.ActivatedAt)
	cycle := (rel / c.hyper) * c.hyper
	within := rel - cycle
	for i, off := range offsets {
		if off == within {
			planned := vtime.Time(cycle + c.starts[task][i])
			if planned > n.Thread.Earliest() {
				prim.SetEarliest(n.Thread, planned)
			}
			return
		}
	}
	// Release off the plan grid (arrival-law violation): leave as-is;
	// the dispatcher's monitoring already recorded it.
}

func gcd(a, b vtime.Duration) vtime.Duration {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b vtime.Duration) vtime.Duration {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd(a, b) * b
}
