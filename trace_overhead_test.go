package hades_test

// Tracing overhead and passivity checks for the observability plane.
//
// TestTracingOverheadGate is the CI gate behind the tracing cost
// budget: tracing at the default sample rate must stay within a few
// percent of ns/op versus tracing disabled on the high-fanout KV
// workload. Comparing two independent `go test -bench` processes
// cannot resolve single-digit percentages — run-to-run machine drift
// alone moves ns/op by 10-30% — so the gate measures a *paired*
// ratio: both legs alternate within one process, every repetition
// contributes an off/traced pair taken under the same machine
// conditions, and the statistic is the ratio of the two summed
// runtimes. With 120+ reps the paired ratio reproduces within a
// couple of points; measured on a quiet machine it sits around 4-6%
// (the trace package itself profiles at ~2.5% CPU with zero
// steady-state allocations; the rest is cache and allocator
// second-order cost).
//
// The gate is opt-in (HADES_TRACE_GATE=1) because it runs the
// workload hundreds of times; CI's bench-trend job enables it.

import (
	"os"
	"strconv"
	"testing"
	"time"

	"hades/internal/cluster"
	"hades/internal/vtime"
)

// tracingBudget is the observability plane's cost contract: tracing
// at the default sample rate should cost no more than this fraction
// of ns/op versus tracing disabled.
const tracingBudget = 0.05

// tracingNoiseAllowance absorbs the residual jitter of the paired
// measurement on shared CI runners (a couple of points even with
// pairing). The gate fails past budget+allowance — loose enough not
// to flake, tight enough to catch any real regression in the
// tracing hot path.
const tracingNoiseAllowance = 0.03

// runHighFanoutKV runs the high-fanout KV workload once under the
// given tracing parameters and returns its wall-clock runtime.
func runHighFanoutKV(tp *cluster.TraceParams) time.Duration {
	t0 := time.Now()
	params := highFanoutSession()
	c := cluster.New(cluster.Config{Seed: 61, Trace: tp})
	c.AddNodes(9)
	c.ConnectAll(100*us, 300*us)
	set := c.ShardsWith(4, 2, cluster.ShardConfig{Session: params})
	cl := set.ClientAt(8)
	n := 0
	for t := vtime.Duration(0); t < 100*ms; t += 2 * ms {
		for _, k := range highFanoutKeys {
			key := k
			n++
			cmd := int64(n)
			c.At(vtime.Time(t), func() { cl.Submit(key, cmd) })
		}
	}
	c.Run(600 * ms)
	if cl.Stats.Acked != cl.Stats.Submitted {
		panic("tracing overhead workload: ack mismatch")
	}
	return time.Since(t0)
}

func TestTracingOverheadGate(t *testing.T) {
	if os.Getenv("HADES_TRACE_GATE") == "" {
		t.Skip("paired overhead gate is opt-in: set HADES_TRACE_GATE=1")
	}
	reps := 120
	if v := os.Getenv("HADES_TRACE_GATE_REPS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			t.Fatalf("bad HADES_TRACE_GATE_REPS %q", v)
		}
		reps = n
	}
	var offSum, tracedSum time.Duration
	for i := 0; i < reps; i++ {
		// Alternate leg order so slow drift (GC state, thermal, noisy
		// neighbours) cancels instead of biasing one leg.
		if i%2 == 0 {
			offSum += runHighFanoutKV(&cluster.TraceParams{Disabled: true})
			tracedSum += runHighFanoutKV(nil) // cluster default sample rate
		} else {
			tracedSum += runHighFanoutKV(nil)
			offSum += runHighFanoutKV(&cluster.TraceParams{Disabled: true})
		}
	}
	ratio := float64(tracedSum)/float64(offSum) - 1
	t.Logf("paired tracing overhead over %d reps: %+.1f%% (budget %.0f%% + %.0f%% noise allowance)",
		reps, 100*ratio, 100*tracingBudget, 100*tracingNoiseAllowance)
	if ratio > tracingBudget+tracingNoiseAllowance {
		t.Fatalf("tracing at the default sample rate costs %+.1f%% vs disabled; budget is %.0f%% (+%.0f%% noise allowance)",
			100*ratio, 100*tracingBudget, 100*tracingNoiseAllowance)
	}
}

// TestTracingPassive pins down that tracing is pure observation: the
// simulation behaves identically with the tracer disabled, sampling
// nothing, and sampling everything. Any divergence means tracing
// leaked into scheduling, randomness or protocol state.
func TestTracingPassive(t *testing.T) {
	type fingerprint struct {
		events  int
		acked   int
		retries int
	}
	run := func(tp *cluster.TraceParams) fingerprint {
		params := highFanoutSession()
		c := cluster.New(cluster.Config{Seed: 61, Trace: tp})
		c.AddNodes(9)
		c.ConnectAll(100*us, 300*us)
		set := c.ShardsWith(4, 2, cluster.ShardConfig{Session: params})
		cl := set.ClientAt(8)
		n := 0
		for tt := vtime.Duration(0); tt < 100*ms; tt += 2 * ms {
			for _, k := range highFanoutKeys {
				key := k
				n++
				cmd := int64(n)
				c.At(vtime.Time(tt), func() { cl.Submit(key, cmd) })
			}
		}
		c.Run(600 * ms)
		return fingerprint{events: len(c.Log().Events()), acked: cl.Stats.Acked, retries: cl.Stats.Retries}
	}
	off := run(&cluster.TraceParams{Disabled: true})
	zero := run(&cluster.TraceParams{SampleRate: 0})
	one := run(&cluster.TraceParams{SampleRate: 1})
	if off != zero || zero != one {
		t.Fatalf("tracing is not passive: off=%+v zero=%+v one=%+v", off, zero, one)
	}
	if off.acked == 0 {
		t.Fatal("workload acked nothing; fingerprint is vacuous")
	}
}
