package hades_test

// Metrics-plane overhead and passivity checks, the metrics twin of
// trace_overhead_test.go.
//
// TestMetricsOverheadGate is the CI gate behind the metrics cost
// budget: the always-on plane (instruments wired through every layer,
// scrapes every 5ms of virtual time) must stay within a few percent of
// runtime versus the plane disabled, measured as a paired alternating
// ratio for the same reasons as the tracing gate. It is opt-in
// (HADES_METRICS_GATE=1); CI's metrics-smoke job enables it.
//
// TestMetricsPassive pins down that the plane is pure observation:
// with metrics off, on, and on-with-breaching-SLO-rules, the monitor
// log (minus the SLO events the plane itself emits) and the client
// outcomes are identical event for event.

import (
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"testing"
	"time"

	"hades/internal/cluster"
	"hades/internal/metrics"
	"hades/internal/monitor"
	"hades/internal/vtime"
)

// metricsBudget is the metrics plane's cost contract versus disabled.
const metricsBudget = 0.05

// metricsNoiseAllowance absorbs paired-measurement jitter on shared
// runners, as in the tracing gate.
const metricsNoiseAllowance = 0.03

// runHighFanoutKVMetrics runs the high-fanout KV workload once under
// the given metrics parameters and returns its wall-clock runtime.
func runHighFanoutKVMetrics(mp *cluster.MetricsParams) time.Duration {
	t0 := time.Now()
	params := highFanoutSession()
	c := cluster.New(cluster.Config{Seed: 61, Metrics: mp})
	c.AddNodes(9)
	c.ConnectAll(100*us, 300*us)
	set := c.ShardsWith(4, 2, cluster.ShardConfig{Session: params})
	cl := set.ClientAt(8)
	n := 0
	for t := vtime.Duration(0); t < 100*ms; t += 2 * ms {
		for _, k := range highFanoutKeys {
			key := k
			n++
			cmd := int64(n)
			c.At(vtime.Time(t), func() { cl.Submit(key, cmd) })
		}
	}
	c.Run(600 * ms)
	if cl.Stats.Acked != cl.Stats.Submitted {
		panic("metrics overhead workload: ack mismatch")
	}
	return time.Since(t0)
}

func TestMetricsOverheadGate(t *testing.T) {
	if os.Getenv("HADES_METRICS_GATE") == "" {
		t.Skip("paired overhead gate is opt-in: set HADES_METRICS_GATE=1")
	}
	reps := 120
	if v := os.Getenv("HADES_METRICS_GATE_REPS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			t.Fatalf("bad HADES_METRICS_GATE_REPS %q", v)
		}
		reps = n
	}
	var offSum, onSum time.Duration
	for i := 0; i < reps; i++ {
		// Alternate leg order so slow drift cancels instead of biasing
		// one leg.
		if i%2 == 0 {
			offSum += runHighFanoutKVMetrics(&cluster.MetricsParams{Disabled: true})
			onSum += runHighFanoutKVMetrics(nil) // plane on with defaults
		} else {
			onSum += runHighFanoutKVMetrics(nil)
			offSum += runHighFanoutKVMetrics(&cluster.MetricsParams{Disabled: true})
		}
	}
	ratio := float64(onSum)/float64(offSum) - 1
	t.Logf("paired metrics overhead over %d reps: %+.1f%% (budget %.0f%% + %.0f%% noise allowance)",
		reps, 100*ratio, 100*metricsBudget, 100*metricsNoiseAllowance)
	if ratio > metricsBudget+metricsNoiseAllowance {
		t.Fatalf("the metrics plane costs %+.1f%% vs disabled; budget is %.0f%% (+%.0f%% noise allowance)",
			100*ratio, 100*metricsBudget, 100*metricsNoiseAllowance)
	}
}

// TestMetricsPassive: the simulation must behave identically with the
// plane off, on, and on with always-breaching SLO rules. The
// fingerprint hashes every monitor event except the SLO breach/clear
// events the plane itself emits — those are its declared output, not
// a behavioral divergence — plus the client outcome counters.
func TestMetricsPassive(t *testing.T) {
	type fingerprint struct {
		logHash uint64
		events  int
		acked   int
		retries int
	}
	run := func(mp *cluster.MetricsParams) (fingerprint, *cluster.Cluster) {
		params := highFanoutSession()
		c := cluster.New(cluster.Config{Seed: 61, Metrics: mp})
		c.AddNodes(9)
		c.ConnectAll(100*us, 300*us)
		set := c.ShardsWith(4, 2, cluster.ShardConfig{Session: params})
		cl := set.ClientAt(8)
		n := 0
		for tt := vtime.Duration(0); tt < 100*ms; tt += 2 * ms {
			for _, k := range highFanoutKeys {
				key := k
				n++
				cmd := int64(n)
				c.At(vtime.Time(tt), func() { cl.Submit(key, cmd) })
			}
		}
		c.Run(600 * ms)
		h := fnv.New64a()
		events := 0
		for _, e := range c.Log().Events() {
			if e.Kind == monitor.KindSLOBreach || e.Kind == monitor.KindSLOClear {
				continue
			}
			events++
			fmt.Fprintf(h, "%d|%d|%d|%s|%s\n", e.At, e.Kind, e.Node, e.Subject, e.Detail)
		}
		return fingerprint{logHash: h.Sum64(), events: events, acked: cl.Stats.Acked, retries: cl.Stats.Retries}, c
	}
	off, _ := run(&cluster.MetricsParams{Disabled: true})
	on, _ := run(nil)
	// Rules that always fail, so the probe engine exercises its whole
	// breach path while the fingerprint must stay untouched.
	loud, c := run(&cluster.MetricsParams{Rules: []metrics.Rule{
		{Name: "impossible", Metric: "kv.ack.latency", Stat: metrics.StatP99, Op: metrics.OpLE, Threshold: 1},
		{Name: "quiet-net", Metric: "net.sent", Op: metrics.OpLE, Threshold: 0},
	}})
	if off != on || on != loud {
		t.Fatalf("metrics plane is not passive: off=%+v on=%+v loud=%+v", off, on, loud)
	}
	if off.acked == 0 {
		t.Fatal("workload acked nothing; fingerprint is vacuous")
	}
	if len(c.Metrics().Breaches()) == 0 {
		t.Fatal("always-breaching rules recorded no breach; the loud leg proved nothing")
	}
}
