// Package hades_test holds the top-level benchmark harness: one
// benchmark per reproduced table/figure (see DESIGN.md §4 and
// EXPERIMENTS.md). Each benchmark runs the corresponding experiment's
// workload end to end; custom metrics report the domain quantity the
// paper cares about (virtual-time responses, admission ratios) next to
// the usual ns/op.
package hades_test

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"hades/internal/clocksync"
	"hades/internal/cluster"
	"hades/internal/consensus"
	"hades/internal/core"
	"hades/internal/dispatcher"
	"hades/internal/eventq"
	"hades/internal/expkit"
	"hades/internal/fault"
	"hades/internal/feasibility"
	"hades/internal/heug"
	"hades/internal/membership"
	"hades/internal/monitor"
	"hades/internal/netsim"
	"hades/internal/rbcast"
	"hades/internal/replication"
	"hades/internal/sched"
	"hades/internal/session"
	"hades/internal/simkern"
	"hades/internal/vtime"
)

const (
	us = vtime.Microsecond
	ms = vtime.Millisecond
)

// BenchmarkFigure2EDFTrace regenerates the Figure 2 cooperation trace
// (experiment E-F2): two activations, scheduler preemptions, priority
// changes, completion.
func BenchmarkFigure2EDFTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, _ := expkit.Figure2Trace(1)
		if rep.Stats.DeadlineMisses != 0 {
			b.Fatal("missed deadline in Figure 2 scenario")
		}
	}
}

// BenchmarkFigure3Translation regenerates the Figure 3 Spuri→HEUG
// translation (E-F3).
func BenchmarkFigure3Translation(b *testing.B) {
	st := heug.SpuriTask{
		Name: "tau", CBefore: 2 * ms, CS: 1 * ms, CAfter: 1500 * us,
		Resource: "S", Deadline: 20 * ms, PseudoPeriod: 25 * ms, Blocking: 3 * ms,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := st.ToHEUG(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatcherCosts measures the host-side cost of one complete
// task-instance lifecycle under the full §4.1 cost book — the real
// "worst-case scenario benchmark" of our dispatcher implementation
// (E-T1).
func BenchmarkDispatcherCosts(b *testing.B) {
	task := heug.NewTask("bench", heug.AperiodicLaw()).
		WithDeadline(100*ms).
		Code("a", heug.CodeEU{Node: 0, WCET: 100 * us}).
		Code("b", heug.CodeEU{Node: 0, WCET: 100 * us}).
		Precede("a", "b").
		MustBuild()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1, Costs: dispatcher.DefaultCostBook(), LogLimit: 1})
		app := sys.NewApp("a", sched.NewRM(), nil)
		if err := app.AddTask(task); err != nil {
			b.Fatal(err)
		}
		app.Seal()
		sys.ActivateAt("bench", 0)
		if rep := sys.Run(10 * ms); rep.Stats.Completions != 1 {
			b.Fatal("instance did not complete")
		}
	}
}

// BenchmarkKernelActivities runs the E-T2 loaded scenario: clock ticks
// plus message-driven ATM interrupts over 100 ms of virtual time.
func BenchmarkKernelActivities(b *testing.B) {
	task := heug.NewTask("ship", heug.PeriodicEvery(2*ms)).
		WithDeadline(2*ms).
		Code("a", heug.CodeEU{Node: 1, WCET: 50 * us}).
		Code("b", heug.CodeEU{Node: 0, WCET: 50 * us}).
		Precede("a", "b").
		MustBuild()
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.Config{Nodes: 2, Seed: 1, Costs: dispatcher.DefaultCostBook(), LogLimit: 1})
		app := sys.NewApp("l", sched.NewRM(), nil)
		if err := app.AddTask(task); err != nil {
			b.Fatal(err)
		}
		app.Seal()
		if err := sys.StartPeriodic("ship"); err != nil {
			b.Fatal(err)
		}
		sys.Run(100 * ms)
	}
}

// BenchmarkFeasibilityEDFSRP measures the §5.3 cost-integrated EDF+SRP
// test (E-S5's analysis side) on random 8-task sets.
func BenchmarkFeasibilityEDFSRP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ov := &feasibility.Overheads{Book: dispatcher.DefaultCostBook(), SchedCost: 20 * us}
	sets := make([][]feasibility.Task, 64)
	for i := range sets {
		sets[i] = feasibility.Generate(rng, feasibility.DefaultGenConfig(8, 0.8))
	}
	b.ResetTimer()
	admitted := 0
	for i := 0; i < b.N; i++ {
		if feasibility.EDFSpuri(sets[i%len(sets)], ov).Feasible {
			admitted++
		}
	}
	b.ReportMetric(float64(admitted)/float64(b.N), "admit-ratio")
}

// BenchmarkEDFSRPSimulation measures the E-S5 validation side: one full
// costed simulation of a 5-task set over 500 ms of virtual time.
func BenchmarkEDFSRPSimulation(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tasks := feasibility.Generate(rng, feasibility.DefaultGenConfig(5, 0.6))
	book := dispatcher.DefaultCostBook()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := expkit.SimulateEDFSRP(tasks, book, 500*ms, 1)
		if rep.Stats.Activations == 0 {
			b.Fatal("no activations")
		}
	}
}

// BenchmarkSchedulabilitySweep is E-X1's inner loop: LL bound + exact
// RTA + EDF demand on one random implicit-deadline set.
func BenchmarkSchedulabilitySweep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	cfg := feasibility.DefaultGenConfig(6, 0.85)
	cfg.DeadlineFactor = 1.0
	cfg.ResourceProb = 0
	sets := make([][]feasibility.Task, 64)
	for i := range sets {
		sets[i] = feasibility.Generate(rng, cfg)
		for j := range sets[i] {
			sets[i][j].D = sets[i][j].T
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tasks := sets[i%len(sets)]
		feasibility.LiuLayland(tasks)
		feasibility.ResponseTime(tasks, feasibility.RateMonotonic, nil)
		feasibility.EDFSpuri(tasks, nil)
	}
}

// BenchmarkResourceProtocols runs the E-X2 inversion workload under
// SRP (the paper's preferred protocol) for 150 ms of virtual time.
func BenchmarkResourceProtocols(b *testing.B) {
	for _, pol := range []struct {
		name string
		mk   func() dispatcher.ResourcePolicy
	}{
		{"SRP", func() dispatcher.ResourcePolicy { return sched.NewSRP() }},
		{"PCP", func() dispatcher.ResourcePolicy { return sched.NewPCP() }},
	} {
		b.Run(pol.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runInversion(b, pol.mk())
			}
		})
	}
}

func runInversion(b *testing.B, policy dispatcher.ResourcePolicy) {
	b.Helper()
	sys := core.NewSystem(core.Config{Nodes: 1, Seed: 1, LogLimit: 1})
	app := sys.NewApp("inv", sched.NewDM(), policy)
	app.MustAddTask(heug.NewTask("low", heug.SporadicEvery(50*ms)).
		WithDeadline(45*ms).
		Code("cs", heug.CodeEU{Node: 0, WCET: 8 * ms,
			Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Exclusive}}}).
		MustBuild())
	app.MustAddTask(heug.NewTask("mid", heug.SporadicEvery(50*ms)).
		WithDeadline(40*ms).
		Code("w", heug.CodeEU{Node: 0, WCET: 15 * ms}).
		MustBuild())
	app.MustAddTask(heug.NewTask("high", heug.SporadicEvery(50*ms)).
		WithDeadline(20*ms).
		Code("u", heug.CodeEU{Node: 0, WCET: 1 * ms,
			Resources: []heug.ResourceReq{{Resource: "R", Mode: heug.Exclusive}}}).
		MustBuild())
	app.Seal()
	_ = sys.StartSporadicWorstCase("low")
	_ = sys.StartSporadicWorstCase("mid")
	_ = sys.StartSporadicWorstCase("high")
	sys.Run(150 * ms)
}

// BenchmarkClockSync runs one second of [LL88] synchronisation with
// n=7, f=2 Byzantine clocks (E-X3), reporting achieved precision.
func BenchmarkClockSync(b *testing.B) {
	var lastPrecision vtime.Duration
	for i := 0; i < b.N; i++ {
		eng := simkern.NewEngine(monitor.NewLog(1), 17)
		nodes := make([]int, 7)
		for j := range nodes {
			eng.AddProcessor("n", 0)
			nodes[j] = j
		}
		net := netsim.New(eng, netsim.Config{WAtm: 5 * us, WProto: 5 * us, PrioNet: simkern.PrioMax - 2})
		net.ConnectAll(nodes, 100*us, 200*us)
		svc, err := clocksync.New(eng, net, clocksync.DefaultConfig(nodes, 2))
		if err != nil {
			b.Fatal(err)
		}
		svc.MakeByzantine(0, clocksync.TwoFacedByzantine(10*ms, eng.Rand()))
		svc.MakeByzantine(3, clocksync.TwoFacedByzantine(20*ms, eng.Rand()))
		svc.Start()
		eng.Run(vtime.Time(vtime.Second))
		lastPrecision = svc.Precision()
		if lastPrecision > svc.Bound() {
			b.Fatal("precision bound violated")
		}
	}
	b.ReportMetric(lastPrecision.Micros(), "precision-us")
}

// BenchmarkReliableBroadcast floods one message through a 7-node group
// tolerating f=2 omission-faulty processes (E-X4).
func BenchmarkReliableBroadcast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := simkern.NewEngine(monitor.NewLog(1), 23)
		nodes := make([]int, 7)
		for j := range nodes {
			eng.AddProcessor("n", 0)
			nodes[j] = j
		}
		net := netsim.New(eng, netsim.Config{WAtm: 10 * us, WProto: 10 * us, PrioNet: simkern.PrioMax - 2})
		net.ConnectAll(nodes, 50*us, 150*us)
		svc := rbcast.New(eng, net, "b", rbcast.DefaultConfig(net, nodes, 2))
		net.SetFault(&fault.OmissionFrom{Nodes: map[int]bool{5: true, 6: true}, Port: "rbcast.b"})
		seq, _ := svc.Broadcast(0, i)
		eng.RunUntilIdle()
		if got := len(svc.DeliveredAt(0, seq)); got != 7 {
			b.Fatalf("delivered to %d/7", got)
		}
	}
}

// BenchmarkReplicationFailover crashes a passive primary and measures
// promotion (E-X5).
func BenchmarkReplicationFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := simkern.NewEngine(monitor.NewLog(1), 53)
		nodes := make([]int, 4)
		for j := range nodes {
			eng.AddProcessor("n", 0)
			nodes[j] = j
		}
		net := netsim.New(eng, netsim.Config{WAtm: 5 * us, WProto: 5 * us, PrioNet: simkern.PrioMax - 2})
		net.ConnectAll(nodes, 50*us, 150*us)
		mem, err := membership.New(eng, net, membership.Config{Name: "g", Nodes: nodes[:3]})
		if err != nil {
			b.Fatal(err)
		}
		g, err := replication.NewGroup(eng, net, mem, replication.Config{
			Name: "g", Replicas: nodes[:3], Style: replication.Passive,
			WExec: 100 * us, CheckpointEvery: 5, StorageLatency: 20 * us,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		mem.Start()
		fault.CrashAt(eng, net, 0, vtime.Time(13*ms+300*us), 0)
		for k := 0; k < 30; k++ {
			cmd := int64(k + 1)
			eng.At(vtime.Time(vtime.Duration(k)*ms), eventq.ClassApp, func() { g.Submit(3, cmd) })
		}
		eng.Run(vtime.Time(200 * ms))
		if len(g.Failovers) != 1 {
			b.Fatal("no failover")
		}
	}
}

// BenchmarkPessimism compares precise vs crude admission (E-X6).
func BenchmarkPessimism(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	precise := &feasibility.Overheads{Book: dispatcher.DefaultCostBook(), SchedCost: 20 * us}
	crude := &feasibility.Overheads{Book: dispatcher.DefaultCostBook().Scale(10), SchedCost: 200 * us}
	sets := make([][]feasibility.Task, 64)
	for i := range sets {
		sets[i] = feasibility.Generate(rng, feasibility.DefaultGenConfig(5, 0.7))
	}
	b.ResetTimer()
	lost := 0
	for i := 0; i < b.N; i++ {
		tasks := sets[i%len(sets)]
		p := feasibility.EDFSpuri(tasks, precise).Feasible
		c := feasibility.EDFSpuri(tasks, crude).Feasible
		if p && !c {
			lost++
		}
	}
	b.ReportMetric(float64(lost)/float64(b.N), "lost-ratio")
}

// BenchmarkConsensus runs 5-node FloodSet with f=2 and one crash (E-X7).
func BenchmarkConsensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := simkern.NewEngine(monitor.NewLog(1), 31)
		nodes := make([]int, 5)
		for j := range nodes {
			eng.AddProcessor("n", 0)
			nodes[j] = j
		}
		net := netsim.New(eng, netsim.Config{WAtm: 10 * us, WProto: 10 * us, PrioNet: simkern.PrioMax - 2})
		net.ConnectAll(nodes, 50*us, 150*us)
		c := consensus.New(eng, net, "b", consensus.DefaultConfig(net, nodes, 2), nil)
		fault.CrashAt(eng, net, 0, vtime.Time(30*us), 0)
		c.Propose(map[int]int64{0: 5, 1: 4, 2: 3, 3: 2, 4: 1})
		eng.RunUntilIdle()
		if len(c.Decisions()) != 4 {
			b.Fatal("survivors did not decide")
		}
	}
}

// highFanoutSession picks the session discipline for the high-fanout
// benchmarks: the HADES_SESSION=unbatched environment variable selects
// the legacy one-op-per-round discipline, anything else the batched +
// pipelined default. The benchmark names stay identical either way, so
// `hades-bench -diff unbatched.json batched.json` compares them
// directly.
func highFanoutSession() session.Params {
	if os.Getenv("HADES_SESSION") == "unbatched" {
		return session.Params{MaxBatch: 1, FlushInterval: session.DefaultFlushInterval, PipelineDepth: 1}
	}
	return session.Params{MaxBatch: 8, FlushInterval: 500 * us, PipelineDepth: 4}
}

// benchTrace picks the tracing configuration for the high-fanout
// benchmarks: HADES_TRACE=off disables the tracer entirely, zero/one
// pin the sample rate for A/B runs, and anything else leaves the
// cluster default (sample 10%). The CI tracing overhead gate lives in
// trace_overhead_test.go — cross-process benchmark diffs cannot
// resolve single-digit percentages.
func benchTrace() *cluster.TraceParams {
	switch os.Getenv("HADES_TRACE") {
	case "off":
		return &cluster.TraceParams{Disabled: true}
	case "zero":
		return &cluster.TraceParams{SampleRate: 0}
	case "one":
		return &cluster.TraceParams{SampleRate: 1}
	}
	return nil
}

// highFanoutKeys spreads the keyed workload wide enough that every
// burst has several ops per shard to coalesce.
var highFanoutKeys = func() []string {
	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
	}
	return keys
}()

// BenchmarkHighFanoutKV is the batching/pipelining workload: one
// client bursting 32 keys per millisecond over a 4-shard plane — the
// shape where per-op wire messages and replication rounds dominate.
// Run it twice (HADES_SESSION=unbatched, then default) and diff the
// baselines to see the op-batching + pipelining win.
func BenchmarkHighFanoutKV(b *testing.B) {
	params := highFanoutSession()
	for i := 0; i < b.N; i++ {
		c := cluster.New(cluster.Config{Seed: 61, Trace: benchTrace()})
		c.AddNodes(9) // 4 shards × 2 replicas + client
		c.ConnectAll(100*us, 300*us)
		set := c.ShardsWith(4, 2, cluster.ShardConfig{Session: params})
		cl := set.ClientAt(8)
		n := 0
		for t := vtime.Duration(0); t < 100*ms; t += 2 * ms {
			for _, k := range highFanoutKeys {
				key := k
				n++
				cmd := int64(n)
				c.At(vtime.Time(t), func() { cl.Submit(key, cmd) })
			}
		}
		// The horizon leaves the unbatched discipline room to drain: one
		// wire message per op saturates the client's per-message cost,
		// so its backlog outlives the 100 ms burst window by ~250 ms.
		// The batched run drains early and fast-forwards the idle tail.
		c.Run(600 * ms)
		if cl.Stats.Acked != cl.Stats.Submitted {
			b.Fatalf("acked %d of %d", cl.Stats.Acked, cl.Stats.Submitted)
		}
		if err := set.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHighFanoutTxn is the group-commit workload: four
// transaction clients driving concurrent transfers over a 4-shard
// plane, so coordinator COMMIT/ABORT records pile up inside the flush
// window and one replicated round carries many of them.
func BenchmarkHighFanoutTxn(b *testing.B) {
	params := highFanoutSession()
	for i := 0; i < b.N; i++ {
		c := cluster.New(cluster.Config{Seed: 67, Trace: benchTrace()})
		c.AddNodes(12) // 4 shards × 2 replicas + 4 txn clients
		c.ConnectAll(100*us, 300*us)
		set := c.ShardsWith(4, 2, cluster.ShardConfig{Session: params, GroupCommit: params})
		plane := set.TxnPlane()
		committed := 0
		for cn := 0; cn < 4; cn++ {
			tc := set.TxnClientAt(8 + cn)
			n := cn
			for t := vtime.Duration(0); t < 100*ms; t += 2 * ms {
				at := t
				c.At(vtime.Time(at), func() {
					src := highFanoutKeys[n%len(highFanoutKeys)]
					dst := highFanoutKeys[(n+5)%len(highFanoutKeys)]
					n += 9
					tc.Transfer(src, dst, 1)
				})
			}
			_ = tc
		}
		c.Run(200 * ms)
		for _, tc := range plane.Clients() {
			committed += tc.Stats.Committed
		}
		if committed == 0 {
			b.Fatal("no transaction committed")
		}
		if err := set.CheckTxns(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationThroughput measures raw engine throughput on the
// F1 architecture workload, reporting virtual events per host-second.
func BenchmarkSimulationThroughput(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.Config{Nodes: 3, Seed: 1, Costs: dispatcher.DefaultCostBook(), LogLimit: 1})
		app := sys.NewApp("t", sched.NewEDF(20*us), sched.NewSRP())
		for j, p := range []vtime.Duration{5 * ms, 7 * ms, 11 * ms, 13 * ms} {
			st := heug.SpuriTask{
				Name: "t" + string(rune('a'+j)), Node: j % 3,
				CBefore: 300 * us, CS: 100 * us, CAfter: 200 * us,
				Resource: "S", Deadline: p, PseudoPeriod: p,
			}
			if err := app.AddSpuri(st); err != nil {
				b.Fatal(err)
			}
		}
		app.Seal()
		for _, n := range []string{"ta", "tb", "tc", "td"} {
			if err := sys.StartSporadicWorstCase(n); err != nil {
				b.Fatal(err)
			}
		}
		sys.Run(200 * ms)
		events = sys.Engine().EventsFired()
	}
	b.ReportMetric(float64(events), "events/run")
}
