// Command hades-bench converts `go test -bench` output on stdin into
// a JSON benchmark baseline, so CI can persist a BENCH_<sha>.json
// artifact per commit and track the performance trajectory — and
// diffs two baselines, flagging regressions past a threshold with a
// nonzero exit (the CI trend gate).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | hades-bench -sha $GITHUB_SHA -out BENCH_$GITHUB_SHA.json
//	hades-bench -diff old.json new.json            # exit 1 on >10% regressions
//	hades-bench -diff -threshold 0.25 old.json new.json
package main

import (
	"flag"
	"fmt"
	"os"

	"hades/internal/benchparse"
)

func main() {
	var (
		sha       = flag.String("sha", "", "commit SHA to stamp into the baseline")
		out       = flag.String("out", "", "output file (default stdout)")
		diff      = flag.Bool("diff", false, "compare two baselines: -diff old.json new.json")
		threshold = flag.Float64("threshold", 0.10, "fractional ns/op movement flagged as a regression")
	)
	flag.Parse()

	if *diff {
		runDiff(flag.Args(), *threshold)
		return
	}

	b, err := benchparse.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(b.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "hades-bench: no benchmark lines on stdin")
		os.Exit(1)
	}
	b.SHA = *sha

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := b.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "hades-bench: %d benchmark(s) recorded\n", len(b.Benchmarks))
}

// runDiff compares two baseline files and exits nonzero when any
// benchmark regressed past the threshold.
func runDiff(args []string, threshold float64) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "hades-bench: -diff needs exactly two baseline files: old.json new.json")
		os.Exit(2)
	}
	old, err := benchparse.Read(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cur, err := benchparse.Read(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rep := benchparse.Diff(old, cur, threshold)
	fmt.Print(rep)
	if rep.HasRegressions() {
		os.Exit(1)
	}
}
