// Command hades-bench converts `go test -bench` output on stdin into
// a JSON benchmark baseline, so CI can persist a BENCH_<sha>.json
// artifact per commit and track the performance trajectory.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | hades-bench -sha $GITHUB_SHA -out BENCH_$GITHUB_SHA.json
package main

import (
	"flag"
	"fmt"
	"os"

	"hades/internal/benchparse"
)

func main() {
	var (
		sha = flag.String("sha", "", "commit SHA to stamp into the baseline")
		out = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	b, err := benchparse.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(b.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "hades-bench: no benchmark lines on stdin")
		os.Exit(1)
	}
	b.SHA = *sha

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := b.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "hades-bench: %d benchmark(s) recorded\n", len(b.Benchmarks))
}
