// Command hades-feas runs the feasibility tests of §5 on a scenario's
// task set: the naive Spuri EDF+SRP processor-demand test, the §5.3
// cost-integrated variant, fixed-priority response-time analysis, and
// the Liu–Layland bound — then optionally validates the verdicts by
// simulation.
//
// Usage:
//
//	hades-feas -builtin spuri-example
//	hades-feas -scenario myset.json -validate
package main

import (
	"flag"
	"fmt"
	"os"

	"hades/internal/expkit"
	"hades/internal/feasibility"
	"hades/internal/scenario"
	"hades/internal/vtime"
)

func main() {
	var (
		builtin  = flag.String("builtin", "", "built-in scenario name")
		file     = flag.String("scenario", "", "scenario JSON file")
		validate = flag.Bool("validate", false, "also run the costed simulation")
	)
	flag.Parse()

	var (
		spec scenario.Spec
		err  error
	)
	switch {
	case *builtin != "":
		spec, err = scenario.Builtin(*builtin)
	case *file != "":
		spec, err = scenario.Load(*file)
	default:
		err = fmt.Errorf("need -builtin <name> or -scenario <file>")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	tasks := spec.AnalysisTasks()
	book := spec.CostBook()
	ov := &feasibility.Overheads{Book: book, SchedCost: 20 * vtime.Microsecond}

	fmt.Printf("task set %q (n=%d, U=%.4f):\n", spec.Name, len(tasks), feasibility.Utilization(tasks))
	for _, t := range tasks {
		fmt.Printf("  %-8s C=%-10s D=%-10s T=%-10s CS=%-8s R=%s\n",
			t.Name, t.C, t.D, t.T, t.CS, orDash(t.Resource))
	}
	fmt.Println()

	naive := feasibility.EDFSpuri(tasks, nil)
	integrated := feasibility.EDFSpuri(tasks, ov)
	printVerdict("EDF+SRP (naive, no costs)", naive)
	printVerdict("EDF+SRP (§5.3 cost-integrated)", integrated)

	// Membership-aware admission: when the scenario declares groups (or
	// a sharded data plane), one failover window — the provable
	// view-change bound — is charged as a top-priority blackout, so
	// the admitted set stays schedulable across a failover.
	if len(spec.Groups) > 0 || spec.Shards != nil {
		clu, err := spec.Build()
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: cannot compute the view-change blackout (scenario build failed: %v)\n", err)
		} else {
			var blackout vtime.Duration
			for _, g := range clu.Groups() {
				if b := g.Membership().Bound(); b > blackout {
					blackout = b
				}
			}
			if blackout > 0 {
				ovb := *ov
				ovb.ViewChangeBlackout = blackout
				printVerdict(fmt.Sprintf("EDF+SRP (+view-change blackout %s)", blackout),
					feasibility.EDFSpuri(tasks, &ovb))
			}
		}
	}

	if rs, all := feasibility.ResponseTime(tasks, feasibility.DeadlineMonotonic, ov); true {
		fmt.Printf("%-34s feasible=%v\n", "DM response-time (with costs):", all)
		for _, r := range rs {
			fmt.Printf("  %-8s R=%-12s B=%-10s meets=%v\n", r.Task, r.R, r.Blocking, r.Meets)
		}
	}
	ll := feasibility.LiuLayland(tasks)
	fmt.Printf("%-34s feasible=%v %s\n", "RM utilisation bound (implicit D):", ll.Feasible, ll.Why)

	if *validate {
		fmt.Println("\nvalidating by simulation (full cost book, worst-case arrivals)...")
		rep := expkit.SimulateEDFSRP(tasks, book, spec.Horizon(), spec.Seed)
		fmt.Printf("  misses: %d over %d activations\n", rep.Stats.DeadlineMisses, rep.Stats.Activations)
		if integrated.Feasible && rep.Stats.DeadlineMisses > 0 {
			fmt.Println("  WARNING: integrated test admitted a set that missed — report this")
			os.Exit(2)
		}
	}
}

func printVerdict(name string, v feasibility.Verdict) {
	fmt.Printf("%-34s feasible=%v", name+":", v.Feasible)
	if !v.Feasible {
		fmt.Printf("  (%s at d=%s)", v.Why, v.FailAt)
	} else {
		fmt.Printf("  (busy period %s, %d deadlines checked)", v.BusyPeriod, v.Checked)
	}
	fmt.Println()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
