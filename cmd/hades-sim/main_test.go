package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hades/internal/trace"
)

// TestRunFlags table-tests the CLI surface: exit codes, error text and
// success output for the observability flags.
func TestRunFlags(t *testing.T) {
	tmp := t.TempDir()
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStdout string // substring, "" to skip
		wantStderr string // substring, "" to skip
	}{
		{
			name:       "list builtins",
			args:       []string{"-list"},
			wantCode:   0,
			wantStdout: "bank-transfer",
		},
		{
			name:       "unknown builtin",
			args:       []string{"-builtin", "no-such-scenario"},
			wantCode:   1,
			wantStderr: "no-such-scenario",
		},
		{
			name:       "missing scenario file",
			args:       []string{"-scenario", filepath.Join(tmp, "absent.json")},
			wantCode:   1,
			wantStderr: "absent.json",
		},
		{
			name:       "unwritable trace path",
			args:       []string{"-builtin", "sharded-kv", "-trace", filepath.Join(tmp, "no-such-dir", "out.json")},
			wantCode:   1,
			wantStderr: "cannot write trace file",
		},
		{
			name:       "trace export",
			args:       []string{"-builtin", "bank-transfer", "-trace", filepath.Join(tmp, "bt.json")},
			wantCode:   0,
			wantStdout: "trace(s) to",
		},
		{
			name:       "percentiles report",
			args:       []string{"-builtin", "bank-transfer", "-percentiles"},
			wantCode:   0,
			wantStdout: "latency percentiles",
		},
		{
			name:       "metrics export",
			args:       []string{"-builtin", "hot-shard", "-metrics", filepath.Join(tmp, "m.json")},
			wantCode:   0,
			wantStdout: "series (80 scrapes) to",
		},
		{
			name:       "unwritable metrics path",
			args:       []string{"-builtin", "hot-shard", "-metrics", filepath.Join(tmp, "no-such-dir", "m.json")},
			wantCode:   1,
			wantStderr: "cannot write metrics file",
		},
		{
			name:       "bad flag",
			args:       []string{"-no-such-flag"},
			wantCode:   1,
			wantStderr: "flag provided but not defined",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, tc.wantCode, stdout.String(), stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout missing %q:\n%s", tc.wantStdout, stdout.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantStderr, stderr.String())
			}
		})
	}
}

// TestTraceExportIsLoadable runs a builtin with -trace and checks the
// exported file parses as Chrome trace JSON with the span shapes the
// acceptance criteria call for: a committed transaction whose tree
// holds both a replication-round span and a lock-wait span.
func TestTraceExportIsLoadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bt.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-builtin", "bank-transfer", "-trace", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("run failed (%d): %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc trace.ChromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("exported file is not Chrome trace JSON: %v", err)
	}
	// Regroup spans by trace (tid) and look for a commit with both a
	// replication-round and a lock-wait child.
	type rec struct {
		commit, repl, lock bool
	}
	byID := make(map[uint64]*rec)
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		r := byID[e.Tid]
		if r == nil {
			r = &rec{}
			byID[e.Tid] = r
		}
		switch {
		case e.Name == "txn.commit":
			r.commit = true
		case strings.HasPrefix(e.Name, "2pc.decision.log"):
			r.repl = true
		case strings.HasPrefix(e.Name, "lock.wait"):
			r.lock = true
		}
	}
	found := 0
	for _, r := range byID {
		if r.commit && r.repl && r.lock {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no committed transaction trace holds both a replication-round and a lock-wait span")
	}
}

// TestTraceExportDeterminism is the satellite-4 guarantee: the same
// seed yields byte-identical exported trace JSON across runs, for both
// builtin scenarios.
func TestTraceExportDeterminism(t *testing.T) {
	for _, builtin := range []string{"sharded-kv", "bank-transfer"} {
		t.Run(builtin, func(t *testing.T) {
			tmp := t.TempDir()
			var out [2][]byte
			for i := range out {
				path := filepath.Join(tmp, "run.json")
				var stdout, stderr bytes.Buffer
				if code := run([]string{"-builtin", builtin, "-trace", path}, &stdout, &stderr); code != 0 {
					t.Fatalf("run %d failed: %s", i, stderr.String())
				}
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				out[i] = data
			}
			if !bytes.Equal(out[0], out[1]) {
				t.Fatalf("exported trace JSON differs between identical runs (%d vs %d bytes)", len(out[0]), len(out[1]))
			}
		})
	}
}
