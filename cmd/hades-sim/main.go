// Command hades-sim runs a HADES scenario — a task set under a chosen
// scheduler and resource protocol on a described cluster (nodes,
// bounded-delay links, placement, fault schedules) — and reports
// per-task statistics, violations and (optionally) the full event
// trace. Distributed and faulty workloads are pure data: see the
// distributed-pipeline builtin for the JSON shape.
//
// Usage:
//
//	hades-sim -builtin spuri-example
//	hades-sim -builtin distributed-pipeline
//	hades-sim -builtin inversion -events
//	hades-sim -builtin partition-split -views -partition
//	hades-sim -builtin sharded-kv -shards -percentiles
//	hades-sim -builtin bank-transfer -txns -trace out.json
//	hades-sim -builtin hot-shard -metrics m.json
//	hades-sim -builtin sensor-fan-out -pubsub
//	hades-sim -scenario myset.json
//	hades-sim -list                  # list built-in scenarios
//
// -trace exports the run's retained causal traces as Chrome
// trace-event JSON, loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing; -percentiles prints the per-shard, per-op-class
// latency percentile table with the layer breakdown; -metrics exports
// the virtual-time metrics timeline (per-interval series, SLO breach
// windows, hot keys) as JSON for hades-metrics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hades/internal/scenario"
	"hades/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parses args, executes the scenario
// and writes reports to stdout, errors to stderr.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hades-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		builtin     = fs.String("builtin", "", "built-in scenario name")
		file        = fs.String("scenario", "", "scenario JSON file")
		traceOut    = fs.String("trace", "", "export retained causal traces as Chrome trace-event JSON to this file (Perfetto-loadable)")
		metricsOut  = fs.String("metrics", "", "export the metrics timeline (per-interval series, SLO breaches, hot keys) as JSON to this file")
		percentiles = fs.Bool("percentiles", false, "print the per-shard, per-op-class latency percentile table")
		events      = fs.Bool("events", false, "print the full monitor event trace")
		gantt       = fs.Bool("gantt", false, "print a per-node CPU occupancy chart")
		views       = fs.Bool("views", false, "print per-node membership view histories")
		partRep     = fs.Bool("partition", false, "print per-group partition/quorum/merge report")
		shardRep    = fs.Bool("shards", false, "print the sharded data plane routing report")
		txnRep      = fs.Bool("txns", false, "print the cross-shard transaction report")
		pubsubRep   = fs.Bool("pubsub", false, "print the pub/sub plane report (per-topic QoS stats and delivery verdict)")
		listThem    = fs.Bool("builtins", false, "list built-in scenarios and exit")
		listAlt     = fs.Bool("list", false, "alias for -builtins")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *listThem || *listAlt {
		fmt.Fprintln(stdout, strings.Join(scenario.BuiltinNames(), "\n"))
		return 0
	}
	var (
		spec scenario.Spec
		err  error
	)
	switch {
	case *builtin != "":
		spec, err = scenario.Builtin(*builtin)
	case *file != "":
		spec, err = scenario.Load(*file)
	default:
		err = fmt.Errorf("need -builtin <name> or -scenario <file> (see -builtins)")
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	clu, err := spec.Build()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	rep := clu.Run(spec.Horizon())
	fmt.Fprintf(stdout, "scenario %q: %d node(s), %d link(s), %d fault(s), scheduler %s, policy %s, costs %s\n",
		spec.Name, spec.Nodes, len(spec.Links), len(spec.Faults), spec.Scheduler, orNone(spec.Policy), orDefault(spec.Costs))
	fmt.Fprint(stdout, rep)
	if len(rep.Violations) > 0 {
		fmt.Fprintf(stdout, "violations (%d):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Fprintln(stdout, " ", v)
		}
	}
	if *percentiles {
		tr := clu.Tracer()
		if tr == nil {
			fmt.Fprintln(stderr, "hades-sim: -percentiles needs tracing enabled (the scenario disabled it)")
			return 1
		}
		started, finished, retained, violating := tr.Counts()
		fmt.Fprintf(stdout, "--- latency percentiles (traces: started=%d finished=%d retained=%d violating=%d, sample rate %g) ---\n",
			started, finished, retained, violating, tr.Rate())
		for _, l := range rep.Latency {
			shard := fmt.Sprintf("shard %d", l.Shard)
			if l.Shard < 0 {
				shard = "all shards"
			}
			fmt.Fprintf(stdout, "  %-11s %-9s n=%-5d p50=%-10s p99=%-10s p999=%-10s max=%s\n",
				l.Class, shard, l.Count, l.P50, l.P99, l.P999, l.Max)
			fmt.Fprintf(stdout, "    mean=%s = queue %s + batch %s + wire %s + replicate %s + lock %s + other %s\n",
				l.Mean, l.Queued, l.Batched, l.Wire, l.Replicating, l.Locked, l.Other)
		}
	}
	if *views {
		for _, g := range clu.Groups() {
			mem := g.Membership()
			fmt.Fprintf(stdout, "--- group %s (view-change bound %s) ---\n", mem.Name(), mem.Bound())
			for _, node := range mem.Nodes() {
				fmt.Fprintf(stdout, "  n%d:", node)
				for _, v := range mem.History(node) {
					fmt.Fprintf(stdout, " %s", v)
				}
				fmt.Fprintln(stdout)
			}
			for _, in := range mem.Installs {
				if in.View.ID == 1 {
					continue
				}
				fmt.Fprintf(stdout, "  install n%d %s at %s (%s, lat %s)\n", in.Node, in.View, in.At, in.Reason, in.Latency)
			}
		}
	}
	if *partRep {
		for _, g := range clu.Groups() {
			mem := g.Membership()
			fmt.Fprintf(stdout, "--- group %s partition report ---\n", mem.Name())
			fmt.Fprintf(stdout, "  quorum: %d of %s; no-quorum time %s\n", mem.Quorum(), mem.Agreed(), mem.NoQuorumTime())
			for _, node := range mem.Nodes() {
				if b := mem.BlockedTime(node); b > 0 {
					fmt.Fprintf(stdout, "  n%d blocked (excluded while alive): %s\n", node, b)
				}
			}
			for _, mg := range mem.Merges {
				fmt.Fprintf(stdout, "  merge %s at %s readmitted %v (heal %s, latency %s)\n",
					mg.View, mg.At, mg.Readmitted, mg.HealAt, mg.Latency)
			}
			flushed := mem.FlushedMessages()
			for _, rep := range g.Replicas() {
				flushed += rep.Flushed
			}
			fmt.Fprintf(stdout, "  flushed at view boundaries: %d message(s)\n", flushed)
		}
	}
	if *shardRep {
		for _, set := range clu.ShardSets() {
			fmt.Fprintln(stdout, "--- sharded data plane ---")
			for _, g := range set.Groups() {
				rep := g.Replication()
				fmt.Fprintf(stdout, "  %s nodes=%v primary=n%d style=%s\n", g.Name(), g.Nodes(), rep.Primary(), rep.Style())
				fmt.Fprintf(stdout, "    requests=%d served=%d redirects=%d blocked=%d duplicates=%d applied=%d\n",
					g.Stats.Requests, g.Stats.Served, g.Stats.Redirects, g.Stats.Blocked, rep.Duplicates,
					rep.Machine(rep.Primary()).Applied)
				for _, fo := range rep.Failovers {
					fmt.Fprintf(stdout, "    failover n%d -> n%d in view %d at %s\n", fo.From, fo.To, fo.InView, fo.At)
				}
			}
			fmt.Fprintf(stdout, "  router republishes: %d\n", set.Router().Republishes)
			for _, cl := range set.Clients() {
				st := cl.Stats
				fmt.Fprintf(stdout, "  client n%d (%s): submitted=%d acked=%d redirects=%d retries=%d queued=%d resubmitted=%d failed=%d blocked=%d\n",
					cl.Node(), cl.Params().Policy, st.Submitted, st.Acked, st.Redirects, st.Retries,
					st.Queued, st.Resubmitted, st.FailedFast, st.Blocked)
				fmt.Fprintf(stdout, "    latency avg=%s max=%s\n", st.AvgLatency(), st.MaxLatency)
				if bs := cl.BatchStats(); bs.Batches > 0 {
					fmt.Fprintf(stdout, "    batches=%d ops=%d maxOps=%d fullFlushes=%d timerFlushes=%d stalls=%d hist=[%s]\n",
						bs.Batches, bs.Ops, bs.MaxBatchOps, bs.FullFlushes, bs.TimerFlushes, bs.Stalls, bs.HistString())
					fmt.Fprintf(stdout, "    pipeline depth: %v\n", cl.MaxInflight())
				}
			}
			if err := set.Check(); err != nil {
				fmt.Fprintf(stdout, "  CONSISTENCY VIOLATION: %v\n", err)
			} else {
				fmt.Fprintln(stdout, "  consistency: every acked request applied exactly once, per-key order intact")
			}
		}
	}
	if *txnRep {
		for _, set := range clu.ShardSets() {
			plane := set.TxnPlane()
			fmt.Fprintln(stdout, "--- cross-shard transactions ---")
			for i, co := range plane.Coordinators() {
				pa := plane.Participants()[i]
				fmt.Fprintf(stdout, "  %s: coord begins=%d commits=%d aborts=%d (deadline=%d) queries=%d groupCommits=%d maxDecisionBatch=%d\n",
					co.Group().Name(), co.Stats.Begins, co.Stats.Commits, co.Stats.Aborts,
					co.Stats.DeadlineAborts, co.Stats.Queries, co.GroupCommits, co.MaxDecisionBatch)
				fmt.Fprintf(stdout, "    part prepares=%d lockWaits=%d votes=%d/%d commits=%d aborts=%d deadlineReleases=%d locksHeld=%d\n",
					pa.Stats.Prepares, pa.Stats.LockWaits, pa.Stats.VotesYes, pa.Stats.VotesNo,
					pa.Stats.Commits, pa.Stats.Aborts, pa.Stats.DeadlineReleases, pa.LockedKeys())
			}
			for _, tc := range plane.Clients() {
				st := tc.Stats
				fmt.Fprintf(stdout, "  client n%d: begun=%d committed=%d aborted=%d (deadline=%d) retries=%d queued=%d resubmitted=%d\n",
					tc.Node(), st.Begun, st.Committed, st.Aborted, st.DeadlineAborts, st.Retries, st.Queued, st.Resubmitted)
				fmt.Fprintf(stdout, "    latency avg=%s max=%s\n", st.AvgLatency(), st.MaxLatency)
			}
			if err := set.CheckTxns(); err != nil {
				fmt.Fprintf(stdout, "  ATOMICITY VIOLATION: %v\n", err)
			} else {
				fmt.Fprintln(stdout, "  atomicity: committed transfers all-or-nothing, aborted ones write nothing, no lock past its deadline")
			}
		}
	}
	qosFailed := false
	if *pubsubRep {
		any := false
		for _, set := range clu.ShardSets() {
			p := set.PubSubPlane()
			if p == nil {
				continue
			}
			any = true
			fmt.Fprintln(stdout, "--- pub/sub plane ---")
			for _, st := range p.Stats() {
				fmt.Fprintf(stdout, "  %s\n", st)
			}
			for _, t := range p.Topics() {
				for _, sub := range p.Subscribers(t.Name()) {
					late := ""
					if sub.JoinTime() > 0 {
						late = fmt.Sprintf(" joinAt=%s", sub.JoinTime())
					}
					fmt.Fprintf(stdout, "  sub n%-2d %-12s delivered=%-5d suppressedDups=%d%s\n",
						sub.Node(), t.Name(), len(sub.Deliveries()), sub.Suppressed(), late)
				}
			}
			if err := p.Verify(); err != nil {
				fmt.Fprintf(stdout, "  QOS VIOLATION: %v\n", err)
				qosFailed = true
			} else {
				fmt.Fprintln(stdout, "  qos: deliveries exactly-once per subscriber, history within depth, deadline misses accounted")
			}
		}
		if !any {
			fmt.Fprintln(stdout, "--- pub/sub plane: none declared ---")
		}
	}
	if *gantt {
		for node := 0; node < spec.Nodes; node++ {
			fmt.Fprintf(stdout, "--- gantt node %d ---\n", node)
			fmt.Fprint(stdout, clu.Log().Gantt(node, 0, clu.Now(), 100))
		}
	}
	if *events {
		fmt.Fprintln(stdout, "--- events ---")
		if err := clu.Log().WriteTrace(stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *traceOut != "" {
		tr := clu.Tracer()
		if tr == nil {
			fmt.Fprintln(stderr, "hades-sim: -trace needs tracing enabled (the scenario disabled it)")
			return 1
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "hades-sim: cannot write trace file: %v\n", err)
			return 1
		}
		werr := trace.WriteChrome(f, tr.Retained())
		cerr := f.Close()
		if werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "hades-sim: writing %s: %v\n", *traceOut, werr)
			return 1
		}
		_, _, retained, _ := tr.Counts()
		fmt.Fprintf(stdout, "wrote %d trace(s) to %s (load in https://ui.perfetto.dev)\n", retained, *traceOut)
	}
	if *metricsOut != "" {
		reg := clu.Metrics()
		if reg == nil {
			fmt.Fprintln(stderr, "hades-sim: -metrics needs the metrics plane enabled (the scenario disabled it)")
			return 1
		}
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(stderr, "hades-sim: cannot write metrics file: %v\n", err)
			return 1
		}
		werr := reg.WriteJSON(f)
		cerr := f.Close()
		if werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "hades-sim: writing %s: %v\n", *metricsOut, werr)
			return 1
		}
		ex := reg.Export()
		fmt.Fprintf(stdout, "wrote %d series (%d scrapes) to %s (inspect with hades-metrics)\n",
			len(ex.Series), ex.Scrapes, *metricsOut)
	}
	// The QoS verdict gates the exit code after every requested export
	// has been written, so CI keeps the artifacts of a failing run.
	if qosFailed {
		return 1
	}
	return 0
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func orDefault(s string) string {
	if s == "" {
		return "default"
	}
	return s
}
