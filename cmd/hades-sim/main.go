// Command hades-sim runs a HADES scenario — a task set under a chosen
// scheduler and resource protocol on a described cluster (nodes,
// bounded-delay links, placement, fault schedules) — and reports
// per-task statistics, violations and (optionally) the full event
// trace. Distributed and faulty workloads are pure data: see the
// distributed-pipeline builtin for the JSON shape.
//
// Usage:
//
//	hades-sim -builtin spuri-example
//	hades-sim -builtin distributed-pipeline
//	hades-sim -builtin inversion -trace
//	hades-sim -builtin partition-split -views -partition
//	hades-sim -builtin sharded-kv -shards
//	hades-sim -builtin bank-transfer -txns
//	hades-sim -scenario myset.json
//	hades-sim -list                  # list built-in scenarios
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hades/internal/scenario"
)

func main() {
	var (
		builtin  = flag.String("builtin", "", "built-in scenario name")
		file     = flag.String("scenario", "", "scenario JSON file")
		trace    = flag.Bool("trace", false, "print the full event trace")
		gantt    = flag.Bool("gantt", false, "print a per-node CPU occupancy chart")
		views    = flag.Bool("views", false, "print per-node membership view histories")
		partRep  = flag.Bool("partition", false, "print per-group partition/quorum/merge report")
		shardRep = flag.Bool("shards", false, "print the sharded data plane routing report")
		txnRep   = flag.Bool("txns", false, "print the cross-shard transaction report")
		listThem = flag.Bool("builtins", false, "list built-in scenarios and exit")
		listAlt  = flag.Bool("list", false, "alias for -builtins")
	)
	flag.Parse()

	if *listThem || *listAlt {
		fmt.Println(strings.Join(scenario.BuiltinNames(), "\n"))
		return
	}
	var (
		spec scenario.Spec
		err  error
	)
	switch {
	case *builtin != "":
		spec, err = scenario.Builtin(*builtin)
	case *file != "":
		spec, err = scenario.Load(*file)
	default:
		err = fmt.Errorf("need -builtin <name> or -scenario <file> (see -builtins)")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	clu, err := spec.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep := clu.Run(spec.Horizon())
	fmt.Printf("scenario %q: %d node(s), %d link(s), %d fault(s), scheduler %s, policy %s, costs %s\n",
		spec.Name, spec.Nodes, len(spec.Links), len(spec.Faults), spec.Scheduler, orNone(spec.Policy), orDefault(spec.Costs))
	fmt.Print(rep)
	if len(rep.Violations) > 0 {
		fmt.Printf("violations (%d):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Println(" ", v)
		}
	}
	if *views {
		for _, g := range clu.Groups() {
			mem := g.Membership()
			fmt.Printf("--- group %s (view-change bound %s) ---\n", mem.Name(), mem.Bound())
			for _, node := range mem.Nodes() {
				fmt.Printf("  n%d:", node)
				for _, v := range mem.History(node) {
					fmt.Printf(" %s", v)
				}
				fmt.Println()
			}
			for _, in := range mem.Installs {
				if in.View.ID == 1 {
					continue
				}
				fmt.Printf("  install n%d %s at %s (%s, lat %s)\n", in.Node, in.View, in.At, in.Reason, in.Latency)
			}
		}
	}
	if *partRep {
		for _, g := range clu.Groups() {
			mem := g.Membership()
			fmt.Printf("--- group %s partition report ---\n", mem.Name())
			fmt.Printf("  quorum: %d of %s; no-quorum time %s\n", mem.Quorum(), mem.Agreed(), mem.NoQuorumTime())
			for _, node := range mem.Nodes() {
				if b := mem.BlockedTime(node); b > 0 {
					fmt.Printf("  n%d blocked (excluded while alive): %s\n", node, b)
				}
			}
			for _, mg := range mem.Merges {
				fmt.Printf("  merge %s at %s readmitted %v (heal %s, latency %s)\n",
					mg.View, mg.At, mg.Readmitted, mg.HealAt, mg.Latency)
			}
			flushed := mem.FlushedMessages()
			for _, rep := range g.Replicas() {
				flushed += rep.Flushed
			}
			fmt.Printf("  flushed at view boundaries: %d message(s)\n", flushed)
		}
	}
	if *shardRep {
		for _, set := range clu.ShardSets() {
			fmt.Println("--- sharded data plane ---")
			for _, g := range set.Groups() {
				rep := g.Replication()
				fmt.Printf("  %s nodes=%v primary=n%d style=%s\n", g.Name(), g.Nodes(), rep.Primary(), rep.Style())
				fmt.Printf("    requests=%d served=%d redirects=%d blocked=%d duplicates=%d applied=%d\n",
					g.Stats.Requests, g.Stats.Served, g.Stats.Redirects, g.Stats.Blocked, rep.Duplicates,
					rep.Machine(rep.Primary()).Applied)
				for _, fo := range rep.Failovers {
					fmt.Printf("    failover n%d -> n%d in view %d at %s\n", fo.From, fo.To, fo.InView, fo.At)
				}
			}
			fmt.Printf("  router republishes: %d\n", set.Router().Republishes)
			for _, cl := range set.Clients() {
				st := cl.Stats
				fmt.Printf("  client n%d (%s): submitted=%d acked=%d redirects=%d retries=%d queued=%d resubmitted=%d failed=%d blocked=%d\n",
					cl.Node(), cl.Params().Policy, st.Submitted, st.Acked, st.Redirects, st.Retries,
					st.Queued, st.Resubmitted, st.FailedFast, st.Blocked)
				fmt.Printf("    latency avg=%s max=%s\n", st.AvgLatency(), st.MaxLatency)
				if bs := cl.BatchStats(); bs.Batches > 0 {
					fmt.Printf("    batches=%d ops=%d maxOps=%d fullFlushes=%d timerFlushes=%d stalls=%d hist=[%s]\n",
						bs.Batches, bs.Ops, bs.MaxBatchOps, bs.FullFlushes, bs.TimerFlushes, bs.Stalls, bs.HistString())
					fmt.Printf("    pipeline depth: %v\n", cl.MaxInflight())
				}
			}
			if err := set.Check(); err != nil {
				fmt.Printf("  CONSISTENCY VIOLATION: %v\n", err)
			} else {
				fmt.Println("  consistency: every acked request applied exactly once, per-key order intact")
			}
		}
	}
	if *txnRep {
		for _, set := range clu.ShardSets() {
			plane := set.TxnPlane()
			fmt.Println("--- cross-shard transactions ---")
			for i, co := range plane.Coordinators() {
				pa := plane.Participants()[i]
				fmt.Printf("  %s: coord begins=%d commits=%d aborts=%d (deadline=%d) queries=%d groupCommits=%d maxDecisionBatch=%d\n",
					co.Group().Name(), co.Stats.Begins, co.Stats.Commits, co.Stats.Aborts,
					co.Stats.DeadlineAborts, co.Stats.Queries, co.GroupCommits, co.MaxDecisionBatch)
				fmt.Printf("    part prepares=%d lockWaits=%d votes=%d/%d commits=%d aborts=%d deadlineReleases=%d locksHeld=%d\n",
					pa.Stats.Prepares, pa.Stats.LockWaits, pa.Stats.VotesYes, pa.Stats.VotesNo,
					pa.Stats.Commits, pa.Stats.Aborts, pa.Stats.DeadlineReleases, pa.LockedKeys())
			}
			for _, tc := range plane.Clients() {
				st := tc.Stats
				fmt.Printf("  client n%d: begun=%d committed=%d aborted=%d (deadline=%d) retries=%d queued=%d resubmitted=%d\n",
					tc.Node(), st.Begun, st.Committed, st.Aborted, st.DeadlineAborts, st.Retries, st.Queued, st.Resubmitted)
				fmt.Printf("    latency avg=%s max=%s\n", st.AvgLatency(), st.MaxLatency)
			}
			if err := set.CheckTxns(); err != nil {
				fmt.Printf("  ATOMICITY VIOLATION: %v\n", err)
			} else {
				fmt.Println("  atomicity: committed transfers all-or-nothing, aborted ones write nothing, no lock past its deadline")
			}
		}
	}
	if *gantt {
		for node := 0; node < spec.Nodes; node++ {
			fmt.Printf("--- gantt node %d ---\n", node)
			fmt.Print(clu.Log().Gantt(node, 0, clu.Now(), 100))
		}
	}
	if *trace {
		fmt.Println("--- trace ---")
		if err := clu.Log().WriteTrace(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func orDefault(s string) string {
	if s == "" {
		return "default"
	}
	return s
}
