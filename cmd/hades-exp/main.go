// Command hades-exp regenerates every table and figure of the HADES
// reproduction (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	hades-exp                 # run everything, full scale
//	hades-exp -run S5         # one experiment
//	hades-exp -run F2 -quick  # reduced scale
//	hades-exp -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hades/internal/expkit"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment ID to run (or 'all')")
		quick = flag.Bool("quick", false, "reduced sample counts")
		seed  = flag.Int64("seed", 1, "base random seed")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(expkit.IDs(), "\n"))
		return
	}
	opts := expkit.Options{Quick: *quick, Seed: *seed}
	if *run == "all" {
		for _, tbl := range expkit.RunAll(opts) {
			fmt.Println(tbl)
		}
		return
	}
	tbl, err := expkit.Run(*run, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(tbl)
}
