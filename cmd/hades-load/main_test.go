package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hades/internal/report"
)

// genReport runs a builtin through the CLI into a temp file and
// returns the path.
func genReport(t *testing.T, builtin, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	var out, errb bytes.Buffer
	if code := run([]string{"-builtin", builtin, "-out", path}, &out, &errb); code != 0 {
		t.Fatalf("run exited %d: %s", code, errb.String())
	}
	return path
}

func TestRunBuiltinWritesValidReport(t *testing.T) {
	for _, builtin := range []string{"load-ramp", "hot-shard", "bank-transfer"} {
		t.Run(builtin, func(t *testing.T) {
			path := genReport(t, builtin, "r.json")
			doc, err := report.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if doc.Name != builtin {
				t.Fatalf("report name = %q, want %q", doc.Name, builtin)
			}
			if doc.Throughput.Achieved == 0 {
				t.Fatal("report records no achieved ops")
			}
			if len(doc.Latency) == 0 {
				t.Fatal("report has no latency rows")
			}
			for _, l := range doc.Latency {
				if l.Count > 0 && l.P999Ns == 0 {
					t.Fatalf("latency row %q has observations but no p999", l.Key())
				}
			}
		})
	}
}

// TestReportDeterministic: two CLI runs of the same builtin produce
// byte-identical LOAD_*.json documents (the acceptance criterion the
// committed baselines rest on).
func TestReportDeterministic(t *testing.T) {
	a, err := os.ReadFile(genReport(t, "load-ramp", "a.json"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(genReport(t, "load-ramp", "b.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same builtin and seed wrote different report bytes")
	}
}

func TestCheckFlag(t *testing.T) {
	path := genReport(t, "load-ramp", "r.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-check", path}, &out, &errb); code != 0 {
		t.Fatalf("-check on a fresh report exited %d: %s", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), "ok:") {
		t.Fatalf("-check output %q", out.String())
	}
	// A malformed file fails the check.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-check", bad}, &out, &errb); code == 0 {
		t.Fatal("-check accepted a report without a horizon")
	}
}

// TestDiffGate: identical reports pass; an injected p99 regression
// past the threshold exits 1; the same change under a looser
// threshold passes.
func TestDiffGate(t *testing.T) {
	path := genReport(t, "load-ramp", "new.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-diff", path, path}, &out, &errb); code != 0 {
		t.Fatalf("self-diff exited %d: %s\n%s", code, errb.String(), out.String())
	}

	// Inject a regression: a baseline whose p99s are half the fresh
	// run's makes the fresh run look >100% worse.
	doc, err := report.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range doc.Latency {
		doc.Latency[i].P99Ns /= 2
	}
	base := filepath.Join(t.TempDir(), "base.json")
	if err := doc.WriteFile(base); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-diff", base, path}, &out, &errb); code != 1 {
		t.Fatalf("injected p99 regression exited %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSIONS") {
		t.Fatalf("diff output names no regressions:\n%s", out.String())
	}
	// Loosened threshold: +100% is allowed at 1.5.
	out.Reset()
	if code := run([]string{"-diff", "-threshold", "1.5", base, path}, &out, &errb); code != 0 {
		t.Fatalf("loose-threshold diff exited %d\n%s", code, out.String())
	}
}

// TestBaselineFlag: -baseline runs the scenario and gates in one
// step.
func TestBaselineFlag(t *testing.T) {
	base := genReport(t, "load-ramp", "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-builtin", "load-ramp", "-baseline", base,
		"-out", filepath.Join(t.TempDir(), "fresh.json")}, &out, &errb); code != 0 {
		t.Fatalf("-baseline against an identical run exited %d: %s\n%s", code, errb.String(), out.String())
	}

	// Doctor the baseline into an impossible standard: fresh p99s look
	// like regressions.
	doc, err := report.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	for i := range doc.Latency {
		doc.Latency[i].P99Ns /= 2
		doc.Latency[i].P999Ns /= 2
	}
	if err := doc.WriteFile(base); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-builtin", "load-ramp", "-baseline", base,
		"-out", filepath.Join(t.TempDir(), "fresh.json")}, &out, &errb); code != 1 {
		t.Fatalf("-baseline with a doctored baseline exited %d, want 1\n%s", code, out.String())
	}
}

func TestArgErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Fatalf("no inputs exited %d, want 2", code)
	}
	if code := run([]string{"-builtin", "load-ramp", "-scenario", "x.json"}, &out, &errb); code != 2 {
		t.Fatalf("both inputs exited %d, want 2", code)
	}
	if code := run([]string{"-builtin", "no-such-builtin"}, &out, &errb); code != 2 {
		t.Fatalf("unknown builtin exited %d, want 2", code)
	}
	if code := run([]string{"-diff", "only-one.json"}, &out, &errb); code != 2 {
		t.Fatalf("one-file diff exited %d, want 2", code)
	}
}
