// Command hades-load runs a scenario under the load harness and
// persists its per-run performance report: offered vs. achieved
// throughput (with the per-interval series), ack/commit latency
// p50/p99/p999 per op class and shard, per-shard service breakdowns,
// the load generators' accounts, SLO outcomes and the fault timeline.
// Reports are deterministic — the same scenario and seed serialize to
// a byte-identical document — so a committed LOAD_<name>.json is a
// trustworthy baseline, and the -baseline/-diff gates flag
// regressions past a per-stat threshold with a nonzero exit.
//
// Usage:
//
//	hades-load -builtin load-ramp                     # report to stdout
//	hades-load -builtin hot-shard -sha $GITHUB_SHA    # writes LOAD_<sha>.json
//	hades-load -scenario run.json -out report.json
//	hades-load -builtin hot-shard -baseline baselines/LOAD_hot-shard.json
//	hades-load -diff old.json new.json                # exit 1 on regression
//	hades-load -diff -threshold 0.25 old.json new.json
//	hades-load -check report.json                     # exit 0 iff well-formed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hades/internal/report"
	"hades/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hades-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		builtin   = fs.String("builtin", "", "built-in scenario to run (see hades-sim -list)")
		scenPath  = fs.String("scenario", "", "scenario JSON file to run")
		out       = fs.String("out", "", "report output file (default LOAD_<sha>.json with -sha, stdout otherwise)")
		sha       = fs.String("sha", "", "commit SHA to stamp into the report")
		baseline  = fs.String("baseline", "", "baseline report to diff the fresh run against (exit 1 on regression)")
		diff      = fs.Bool("diff", false, "compare two report files: -diff old.json new.json")
		check     = fs.Bool("check", false, "validate a report file: -check report.json")
		threshold = fs.Float64("threshold", 0.10, "fractional per-stat movement flagged as a regression")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *diff {
		return runDiff(fs.Args(), *threshold, stdout, stderr)
	}
	if *check {
		return runCheck(fs.Args(), stdout, stderr)
	}

	if (*builtin == "") == (*scenPath == "") {
		fmt.Fprintln(stderr, "hades-load: need exactly one of -builtin or -scenario")
		return 2
	}
	var (
		spec scenario.Spec
		err  error
	)
	if *builtin != "" {
		spec, err = scenario.Builtin(*builtin)
	} else {
		spec, err = scenario.Load(*scenPath)
	}
	if err != nil {
		fmt.Fprintf(stderr, "hades-load: %v\n", err)
		return 2
	}
	sys, err := spec.Build()
	if err != nil {
		fmt.Fprintf(stderr, "hades-load: %v\n", err)
		return 2
	}
	sys.Run(spec.Horizon())
	doc := sys.ReportNow(spec.Name)
	doc.SHA = *sha
	if err := doc.Validate(); err != nil {
		fmt.Fprintf(stderr, "hades-load: run produced an invalid report: %v\n", err)
		return 2
	}

	path := *out
	if path == "" && *sha != "" {
		path = "LOAD_" + *sha + ".json"
	}
	if path != "" {
		if err := doc.WriteFile(path); err != nil {
			fmt.Fprintf(stderr, "hades-load: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "hades-load: %s: offered=%d achieved=%d (%.0f/s) latency-rows=%d slo=%d fault-events=%d -> %s\n",
			doc.Name, doc.Throughput.Offered, doc.Throughput.Achieved,
			doc.Throughput.AchievedPerSec, len(doc.Latency), len(doc.SLO), len(doc.Faults), path)
	} else if err := doc.WriteJSON(stdout); err != nil {
		fmt.Fprintf(stderr, "hades-load: %v\n", err)
		return 2
	}

	if *baseline != "" {
		old, err := report.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "hades-load: %v\n", err)
			return 2
		}
		d := report.Diff(old, doc, report.UniformThresholds(*threshold))
		fmt.Fprint(stdout, d)
		if d.HasRegressions() {
			return 1
		}
	}
	return 0
}

// runDiff compares two persisted reports and exits nonzero when any
// stat regressed past the threshold.
func runDiff(args []string, threshold float64, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "hades-load: -diff needs exactly two report files: old.json new.json")
		return 2
	}
	old, err := report.ReadFile(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "hades-load: %v\n", err)
		return 2
	}
	cur, err := report.ReadFile(args[1])
	if err != nil {
		fmt.Fprintf(stderr, "hades-load: %v\n", err)
		return 2
	}
	d := report.Diff(old, cur, report.UniformThresholds(threshold))
	fmt.Fprint(stdout, d)
	if d.HasRegressions() {
		return 1
	}
	return 0
}

// runCheck validates a persisted report's schema.
func runCheck(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "hades-load: -check needs exactly one report file")
		return 2
	}
	doc, err := report.ReadFile(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "hades-load: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "ok: %s seed=%d offered=%d achieved=%d (%.0f/s) series=%d latency-rows=%d loads=%d slo=%d fault-events=%d\n",
		doc.Name, doc.Seed, doc.Throughput.Offered, doc.Throughput.Achieved,
		doc.Throughput.AchievedPerSec, len(doc.Throughput.Series),
		len(doc.Latency), len(doc.Loads), len(doc.SLO), len(doc.Faults))
	return 0
}
