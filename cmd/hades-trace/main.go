// Command hades-trace inspects Chrome trace-event JSON exported by
// hades-sim -trace: it validates the file, lists the slowest traces,
// and renders a per-trace waterfall of the span tree — a terminal
// companion to loading the file in Perfetto.
//
// Usage:
//
//	hades-sim -builtin bank-transfer -trace out.json
//	hades-trace out.json                 # slowest-10 report + waterfalls
//	hades-trace -top 3 out.json
//	hades-trace -check out.json          # exit 0 iff well-formed with spans
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"hades/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// span is one X event regrouped under its trace.
type span struct {
	name  string
	layer string
	ts    float64 // µs since run start
	dur   float64 // µs
}

// traceRec is one trace reassembled from the event stream.
type traceRec struct {
	id    uint64
	shard int
	title string // thread_name metadata: "<class> #<id> <label>"
	spans []span
	marks []string
	viols []string
}

// root returns the trace's end-to-end duration: its widest span (the
// root span covers the whole trace by construction).
func (t *traceRec) root() (span, bool) {
	var best span
	found := false
	for _, s := range t.spans {
		if !found || s.dur > best.dur {
			best, found = s, true
		}
	}
	return best, found
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hades-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		check = fs.Bool("check", false, "validate only: exit 0 iff the file parses as Chrome trace JSON with at least one span")
		top   = fs.Int("top", 10, "number of slowest traces to report")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "hades-trace: need exactly one trace file (exported with hades-sim -trace)")
		return 1
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "hades-trace: %v\n", err)
		return 1
	}
	var doc trace.ChromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(stderr, "hades-trace: %s is not Chrome trace JSON: %v\n", path, err)
		return 1
	}
	traces, spans := regroup(doc)
	if *check {
		if spans == 0 {
			fmt.Fprintf(stderr, "hades-trace: %s parses but holds no spans\n", path)
			return 1
		}
		fmt.Fprintf(stdout, "ok: %d trace(s), %d span(s)\n", len(traces), spans)
		return 0
	}
	if len(traces) == 0 {
		fmt.Fprintf(stderr, "hades-trace: %s holds no traces\n", path)
		return 1
	}
	sort.Slice(traces, func(i, j int) bool {
		ri, _ := traces[i].root()
		rj, _ := traces[j].root()
		if ri.dur != rj.dur {
			return ri.dur > rj.dur
		}
		return traces[i].id < traces[j].id
	})
	n := *top
	if n > len(traces) {
		n = len(traces)
	}
	fmt.Fprintf(stdout, "%d trace(s), %d span(s); %s; slowest %d:\n", len(traces), spans, rootSummary(traces), n)
	for _, t := range traces[:n] {
		waterfall(stdout, t)
	}
	return 0
}

// rootSummary renders end-to-end latency percentiles over the traces'
// root-span durations. Traces arrive sorted by root duration
// descending, so the nearest-rank percentile indexes from the tail.
func rootSummary(traces []*traceRec) string {
	durs := make([]float64, 0, len(traces))
	for _, t := range traces {
		if r, ok := t.root(); ok {
			durs = append(durs, r.dur)
		}
	}
	if len(durs) == 0 {
		return "no root spans"
	}
	pct := func(p float64) float64 {
		// durs is descending: rank r from the top picks the value below
		// which a fraction p of the population falls.
		idx := len(durs) - 1 - int(p*float64(len(durs)-1)+0.5)
		if idx < 0 {
			idx = 0
		}
		return durs[idx]
	}
	return fmt.Sprintf("root p50=%.1fus p99=%.1fus p999=%.1fus max=%.1fus",
		pct(0.5), pct(0.99), pct(0.999), durs[0])
}

// regroup reassembles traces from the flat event stream: X events by
// tid, thread_name metadata for titles, instants for marks/violations.
func regroup(doc trace.ChromeDoc) ([]*traceRec, int) {
	byID := make(map[uint64]*traceRec)
	order := []uint64{}
	get := func(id uint64, shard int) *traceRec {
		t := byID[id]
		if t == nil {
			t = &traceRec{id: id, shard: shard}
			byID[id] = t
			order = append(order, id)
		}
		return t
	}
	spans := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "thread_name" {
				continue
			}
			if name, ok := e.Args["name"].(string); ok {
				get(e.Tid, e.Pid).title = name
			}
		case "X":
			t := get(e.Tid, e.Pid)
			dur := 0.0
			if e.Dur != nil {
				dur = *e.Dur
			}
			layer, _ := e.Args["layer"].(string)
			t.spans = append(t.spans, span{name: e.Name, layer: layer, ts: e.Ts, dur: dur})
			spans++
		case "i":
			t := get(e.Tid, e.Pid)
			if e.S == "g" {
				t.viols = append(t.viols, e.Name)
			} else {
				t.marks = append(t.marks, fmt.Sprintf("%.1fus %s", e.Ts, e.Name))
			}
		}
	}
	out := make([]*traceRec, 0, len(order))
	for _, id := range order {
		out = append(out, byID[id])
	}
	return out, spans
}

// waterfall renders one trace: a line per span, offset and scaled bar
// against the trace's end-to-end window, plus marks and violations.
func waterfall(w io.Writer, t *traceRec) {
	root, ok := t.root()
	if !ok {
		return
	}
	title := t.title
	if title == "" {
		title = fmt.Sprintf("trace %d", t.id)
	}
	fmt.Fprintf(w, "\n%s (shard %d): %.1fus\n", title, t.shard, root.dur)
	const cols = 40
	sorted := append([]span(nil), t.spans...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].ts != sorted[j].ts {
			return sorted[i].ts < sorted[j].ts
		}
		return sorted[i].dur > sorted[j].dur
	})
	for _, s := range sorted {
		lead := 0
		width := cols
		if root.dur > 0 {
			lead = int((s.ts - root.ts) / root.dur * cols)
			width = int(s.dur / root.dur * cols)
		}
		if lead < 0 {
			lead = 0
		}
		if lead > cols {
			lead = cols
		}
		if width < 1 {
			width = 1
		}
		if lead+width > cols {
			width = cols - lead
			if width < 1 {
				width = 1
			}
		}
		bar := strings.Repeat(" ", lead) + strings.Repeat("=", width)
		fmt.Fprintf(w, "  %-44s |%-*s| +%-10.1f %10.1fus  %s\n", s.name, cols, bar, s.ts-root.ts, s.dur, s.layer)
	}
	for _, m := range t.marks {
		fmt.Fprintf(w, "  * %s\n", m)
	}
	for _, v := range t.viols {
		fmt.Fprintf(w, "  ! %s\n", v)
	}
	if rows := layerBreakdown(sorted); len(rows) > 0 {
		fmt.Fprint(w, "  layers:")
		for _, lr := range rows {
			pct := 0.0
			if root.dur > 0 {
				pct = lr.self / root.dur * 100
			}
			fmt.Fprintf(w, "  %s %.1fus (%.0f%%)", lr.layer, lr.self, pct)
		}
		fmt.Fprintln(w)
	}
}

// layerRow is one layer's share of a trace's end-to-end time.
type layerRow struct {
	layer string
	self  float64 // µs of self-time attributed to the layer
}

// layerBreakdown attributes each span's self-time (its duration minus
// its immediate children's) to the span's layer, so the rows sum to
// the trace's end-to-end duration without double-counting nesting.
// Spans must already be sorted by start time, widest first on ties.
func layerBreakdown(sorted []span) []layerRow {
	type open struct {
		end float64
		idx int
	}
	self := make([]float64, len(sorted))
	layer := make([]string, len(sorted))
	var stack []open
	for i, s := range sorted {
		self[i] = s.dur
		layer[i] = s.layer
		if layer[i] == "" {
			layer[i] = "other"
		}
		// Tolerate float µs rounding at containment boundaries.
		const eps = 1e-6
		for len(stack) > 0 && s.ts >= stack[len(stack)-1].end-eps {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			self[stack[len(stack)-1].idx] -= s.dur
		}
		stack = append(stack, open{end: s.ts + s.dur, idx: i})
	}
	sums := map[string]float64{}
	order := []string{}
	for i := range sorted {
		if self[i] < 0 {
			self[i] = 0
		}
		if _, seen := sums[layer[i]]; !seen {
			order = append(order, layer[i])
		}
		sums[layer[i]] += self[i]
	}
	sort.Slice(order, func(i, j int) bool {
		if sums[order[i]] != sums[order[j]] {
			return sums[order[i]] > sums[order[j]]
		}
		return order[i] < order[j]
	})
	rows := make([]layerRow, 0, len(order))
	for _, l := range order {
		rows = append(rows, layerRow{layer: l, self: sums[l]})
	}
	return rows
}
