package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hades/internal/trace"
	"hades/internal/vtime"
)

// writeSample exports a small hand-built trace file and returns its path.
func writeSample(t *testing.T) string {
	t.Helper()
	now := vtime.Time(0)
	tick := func(d vtime.Duration) { now += vtime.Time(d) }
	tr := trace.New(1, 1.0, func() vtime.Time { return now })
	tc := tr.Begin("txn", 0)
	tc.SetLabel("t0.1")
	s := tc.Span("queue.txn", trace.LayerQueue)
	tick(50 * vtime.Microsecond)
	s.End()
	w := tc.Span("rpc.txn", trace.LayerWire)
	tick(200 * vtime.Microsecond)
	tc.Instant("retry after timeout")
	tick(100 * vtime.Microsecond)
	w.End()
	tc.SetClass("txn.abort")
	tc.Violate("abort: deadline")
	tc.Finish()

	path := filepath.Join(t.TempDir(), "sample.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChrome(f, tr.Retained()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRun(t *testing.T) {
	sample := writeSample(t)
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"traceEvents":[],"displayTimeUnit":"ms"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStdout string
		wantStderr string
	}{
		{"check ok", []string{"-check", sample}, 0, "ok: 1 trace(s)", ""},
		{"check garbage", []string{"-check", garbage}, 1, "", "not Chrome trace JSON"},
		{"check empty", []string{"-check", empty}, 1, "", "holds no spans"},
		{"check missing file", []string{"-check", filepath.Join(t.TempDir(), "nope.json")}, 1, "", "hades-trace:"},
		{"no args", nil, 1, "", "need exactly one trace file"},
		{"two args", []string{sample, sample}, 1, "", "need exactly one trace file"},
		{"waterfall", []string{"-top", "1", sample}, 0, "txn.abort", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, tc.wantCode, stdout.String(), stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout missing %q:\n%s", tc.wantStdout, stdout.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantStderr, stderr.String())
			}
		})
	}
}

// TestWaterfallShowsMarksAndViolations checks the default report
// renders instants and violations alongside the span bars.
func TestWaterfallShowsMarksAndViolations(t *testing.T) {
	sample := writeSample(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{sample}, &stdout, &stderr); code != 0 {
		t.Fatalf("run failed: %s", stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"queue.txn", "rpc.txn", "* ", "retry after timeout", "! ", "abort: deadline",
		"layers:", "wire 300.0us", "queue 50.0us"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
