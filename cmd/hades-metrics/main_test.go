package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hades/internal/metrics"
)

// writeSample marshals a small hand-built export and returns its path.
func writeSample(t *testing.T) string {
	t.Helper()
	doc := metrics.Export{
		IntervalNs: 5_000_000, Capacity: 256, Scrapes: 3,
		Series: []metrics.SeriesData{
			{Name: "kv.ack.latency", Kind: "hist", Unit: "ns", Points: []metrics.PointData{
				{T: 5_000_000, V: 4, P50: 1_200_000, P99: 1_400_000, Max: 1_400_000},
				{T: 10_000_000, V: 6, P50: 1_100_000, P99: 9_000_000, Max: 10_000_000},
				{T: 15_000_000, V: 5, P50: 1_300_000, P99: 1_500_000, Max: 1_500_000},
			}},
			{Name: "shard.ops.shard0", Kind: "counter", Dropped: 2, Points: []metrics.PointData{
				{T: 5_000_000, V: 9}, {T: 10_000_000, V: 7}, {T: 15_000_000, V: 8},
			}},
		},
		SLO: []metrics.RuleData{
			{Name: "ack-p99", Expr: "p99(kv.ack.latency) <= 5e+06", Metric: "kv.ack.latency",
				Stat: "p99", Op: "<=", Threshold: 5_000_000, For: 1, Evals: 3,
				Breaches: []metrics.BreachData{{Onset: 10_000_000, Clear: 15_000_000, Intervals: 1, Worst: 9_000_000}}},
		},
		TopKeys: []metrics.HotKey{
			{Key: "alpha", Shard: 0, Count: 19},
			{Key: "bravo", Shard: 1, Count: 4},
			{Key: "golf", Shard: 0, Count: 3, Err: 1},
		},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sample.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRun(t *testing.T) {
	sample := writeSample(t)
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"interval_ns":5000000,"capacity":256,"scrapes":0,"series":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStdout string
		wantStderr string
	}{
		{"check ok", []string{"-check", sample}, 0, "ok: 2 series, 3 scrapes", ""},
		{"check garbage", []string{"-check", garbage}, 1, "", "not a metrics export"},
		{"check empty", []string{"-check", empty}, 1, "", "holds no scraped series"},
		{"check missing file", []string{"-check", filepath.Join(t.TempDir(), "nope.json")}, 1, "", "hades-metrics:"},
		{"no args", nil, 1, "", "need exactly one metrics file"},
		{"two args", []string{sample, sample}, 1, "", "need exactly one metrics file"},
		{"slo report", []string{"-slo", sample}, 0, "breach onset 10.0ms, cleared 15.0ms", ""},
		{"top report", []string{"-top", "2", sample}, 0, "hot shard: 0", ""},
		{"timeline", []string{sample}, 0, "kv.ack.latency", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, tc.wantCode, stdout.String(), stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout missing %q:\n%s", tc.wantStdout, stdout.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantStderr, stderr.String())
			}
		})
	}
}

// TestReportsDetail pins the report contents: the timeline marks ring
// evictions and histogram worst-p99; -top shows the admission error
// bound; -slo prints the rule expression.
func TestReportsDetail(t *testing.T) {
	sample := writeSample(t)
	var out bytes.Buffer
	if code := run([]string{sample}, &out, &out); code != 0 {
		t.Fatalf("timeline failed:\n%s", out.String())
	}
	for _, want := range []string{"(+2 points evicted)", "worst-p99=9.00ms", "counter", "hist"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("timeline missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if code := run([]string{"-top", "3", sample}, &out, &out); code != 0 {
		t.Fatalf("-top failed:\n%s", out.String())
	}
	for _, want := range []string{"alpha", "~19 touch(es)", "(±1)", "hot shard: 0 (22 of 26"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-top missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if code := run([]string{"-slo", sample}, &out, &out); code != 0 {
		t.Fatalf("-slo failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "p99(kv.ack.latency) <= 5e+06") {
		t.Errorf("-slo missing the rule expression:\n%s", out.String())
	}
}
