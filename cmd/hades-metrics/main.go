// Command hades-metrics inspects the metrics timeline exported by
// hades-sim -metrics: it validates the file, renders a text timeline
// of every series, reports the SLO probe outcomes (breach windows
// with onset/clear instants), and names the hottest keys and the hot
// shard from the space-saving sketch.
//
// Usage:
//
//	hades-sim -builtin hot-shard -metrics m.json
//	hades-metrics m.json                # text timeline of every series
//	hades-metrics -slo m.json           # SLO rules and breach windows
//	hades-metrics -top 5 m.json         # hottest keys + hot shard
//	hades-metrics -check m.json         # exit 0 iff well-formed with scrapes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"hades/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hades-metrics", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		check = fs.Bool("check", false, "validate only: exit 0 iff the file parses and holds at least one scraped series")
		slo   = fs.Bool("slo", false, "print the SLO probe report: rules, evals, breach windows")
		top   = fs.Int("top", 0, "print the N hottest keys and the hot shard")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "hades-metrics: need exactly one metrics file (exported with hades-sim -metrics)")
		return 1
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "hades-metrics: %v\n", err)
		return 1
	}
	var doc metrics.Export
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(stderr, "hades-metrics: %s is not a metrics export: %v\n", path, err)
		return 1
	}
	if *check {
		if len(doc.Series) == 0 || doc.Scrapes == 0 {
			fmt.Fprintf(stderr, "hades-metrics: %s parses but holds no scraped series\n", path)
			return 1
		}
		fmt.Fprintf(stdout, "ok: %d series, %d scrapes every %.1fms, %d slo rule(s), %d hot key(s)\n",
			len(doc.Series), doc.Scrapes, ms(doc.IntervalNs), len(doc.SLO), len(doc.TopKeys))
		return 0
	}
	did := false
	if *slo {
		sloReport(stdout, &doc)
		did = true
	}
	if *top > 0 {
		topReport(stdout, &doc, *top)
		did = true
	}
	if !did {
		timeline(stdout, &doc)
	}
	return 0
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// timeline renders one line per series: an ASCII sparkline of the
// retained window plus its range, so a run's shape is readable
// without leaving the terminal.
func timeline(w io.Writer, doc *metrics.Export) {
	fmt.Fprintf(w, "%d series, %d scrapes every %.1fms\n", len(doc.Series), doc.Scrapes, ms(doc.IntervalNs))
	for _, s := range doc.Series {
		vals := make([]int64, len(s.Points))
		for i, p := range s.Points {
			vals[i] = p.V
		}
		min, max, last := rangeOf(vals)
		unit := s.Unit
		if unit == "" {
			unit = " "
		}
		fmt.Fprintf(w, "  %-24s %-7s %-4s [%s] min=%d max=%d last=%d", s.Name, s.Kind, unit, spark(vals, max), min, max, last)
		if s.Kind == "hist" {
			p99, p999 := int64(0), int64(0)
			for _, p := range s.Points {
				if p.P99 > p99 {
					p99 = p.P99
				}
				if p.P999 > p999 {
					p999 = p.P999
				}
			}
			if s.Unit == "ns" || s.Unit == "" {
				fmt.Fprintf(w, " worst-p99=%.2fms worst-p999=%.2fms", ms(p99), ms(p999))
			} else {
				fmt.Fprintf(w, " worst-p99=%d worst-p999=%d", p99, p999)
			}
		}
		if s.Dropped > 0 {
			fmt.Fprintf(w, " (+%d points evicted)", s.Dropped)
		}
		fmt.Fprintln(w)
	}
	if len(doc.SLO) > 0 || len(doc.TopKeys) > 0 {
		fmt.Fprintf(w, "(%d slo rule(s): -slo; %d hot key(s): -top N)\n", len(doc.SLO), len(doc.TopKeys))
	}
}

func rangeOf(vals []int64) (min, max, last int64) {
	for i, v := range vals {
		if i == 0 || v < min {
			min = v
		}
		if v > max {
			max = v
		}
		last = v
	}
	return
}

// spark renders values as a fixed ASCII ramp scaled against max.
func spark(vals []int64, max int64) string {
	const ramp = " .:-=+*#@"
	out := make([]byte, len(vals))
	for i, v := range vals {
		idx := 0
		if max > 0 && v > 0 {
			idx = 1 + int(int64(len(ramp)-2)*v/max)
		}
		out[i] = ramp[idx]
	}
	return string(out)
}

// sloReport prints every rule with its breach windows.
func sloReport(w io.Writer, doc *metrics.Export) {
	if len(doc.SLO) == 0 {
		fmt.Fprintln(w, "no slo rules declared")
		return
	}
	for _, r := range doc.SLO {
		status := "ok"
		if len(r.Breaches) > 0 {
			status = fmt.Sprintf("%d breach(es)", len(r.Breaches))
		}
		fmt.Fprintf(w, "%-16s %-36s evals=%-5d %s\n", r.Name, r.Expr, r.Evals, status)
		for _, b := range r.Breaches {
			clear := "open at run end"
			if b.Clear > 0 {
				clear = fmt.Sprintf("cleared %.1fms", ms(b.Clear))
			}
			fmt.Fprintf(w, "  breach onset %.1fms, %s (%d interval(s), worst %g)\n",
				ms(b.Onset), clear, b.Intervals, b.Worst)
		}
	}
}

// topReport prints the hottest keys and aggregates their touches per
// shard to name the hot shard.
func topReport(w io.Writer, doc *metrics.Export, n int) {
	if len(doc.TopKeys) == 0 {
		fmt.Fprintln(w, "no hot keys sketched (no keyed workload, or the plane was disabled)")
		return
	}
	keys := doc.TopKeys
	if n < len(keys) {
		keys = keys[:n]
	}
	var total int64
	byShard := map[int]int64{}
	for _, k := range doc.TopKeys {
		total += k.Count
		byShard[k.Shard] += k.Count
	}
	fmt.Fprintf(w, "hottest %d of %d sketched key(s):\n", len(keys), len(doc.TopKeys))
	for _, k := range keys {
		errNote := ""
		if k.Err > 0 {
			errNote = fmt.Sprintf(" (±%d)", k.Err)
		}
		fmt.Fprintf(w, "  %-16s shard %-3d ~%d touch(es)%s\n", k.Key, k.Shard, k.Count, errNote)
	}
	shards := make([]int, 0, len(byShard))
	for s := range byShard {
		shards = append(shards, s)
	}
	sort.Slice(shards, func(i, j int) bool {
		if byShard[shards[i]] != byShard[shards[j]] {
			return byShard[shards[i]] > byShard[shards[j]]
		}
		return shards[i] < shards[j]
	})
	hot := shards[0]
	fmt.Fprintf(w, "hot shard: %d (%d of %d sketched touches, %.0f%%)\n",
		hot, byShard[hot], total, float64(byShard[hot])/float64(total)*100)
}
